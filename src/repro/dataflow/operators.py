"""Logical operators of the dataflow DAG and their partitioned execution.

Each :class:`Operator` is an immutable node holding its parents and a
user-defined function.  Execution is partition-parallel over ``parallelism``
simulated workers: partition-local operators (map, filter, flat-map) never
move data; key-based operators (join, group, distinct) shuffle records and
report the movement to the environment's :class:`~repro.dataflow.metrics.JobMetrics`.
"""

import enum
import itertools

from .cancellation import POLL_INTERVAL
from .errors import JobExecutionError
from .partitioner import partition_index, round_robin_partitions, stable_hash
from .sizing import estimate_size

#: mask for ``index & _POLL_MASK == 0`` deadline checks in inner loops
_POLL_MASK = POLL_INTERVAL - 1

_ids = itertools.count()


class JoinStrategy(enum.Enum):
    """Physical join strategies, mirroring Flink's optimizer choices."""

    AUTO = "auto"
    REPARTITION_HASH = "repartition-hash"
    BROADCAST_FIRST = "broadcast-first"
    BROADCAST_SECOND = "broadcast-second"
    SORT_MERGE = "sort-merge"


class ShuffleStats:
    """Bookkeeping for one data redistribution."""

    def __init__(self, parallelism):
        self.records = 0
        self.bytes = 0
        self.bytes_in = [0] * parallelism

    def merge(self, other):
        self.records += other.records
        self.bytes += other.bytes
        for worker, received in enumerate(other.bytes_in):
            self.bytes_in[worker] += received


class ExecutionContext:
    """Per-run services handed to operators: shuffling, metrics, memory."""

    def __init__(self, environment, metrics, iteration=None, cancellation=None,
                 fused=False, batch_size=None, pool=None, columnar=False):
        self._environment = environment
        self._metrics = metrics
        self.iteration = iteration
        #: :class:`~repro.dataflow.cancellation.CancellationToken` or None.
        #: Operators read it into a local and poll at batch boundaries;
        #: plain runs carry ``None`` and pay a single ``is None`` test.
        self.cancellation = cancellation
        #: when True the evaluator runs the fusion pass and executes
        #: map/filter/flat-map chains as compiled batched loops
        self.fused = fused
        #: when True (fused runs only), fused chains with columnar kernels
        #: execute over :class:`~repro.engine.columnar.EmbeddingChunk`
        #: batches and joins/shuffles split chunks by slicing columns;
        #: operators without kernels fall back per-record transparently
        self.columnar = columnar
        #: :class:`~repro.dataflow.workers.WorkerPool` or None.  Set only
        #: on fused runs of a ``workers=N`` environment; operators with a
        #: shippable task shape (fused chains, hash-join partition pairs)
        #: offload to it and fall back in-process when it is None or the
        #: task fails shippability certification.
        self.pool = pool
        self.batch_size = (
            batch_size if batch_size is not None
            else getattr(environment, "batch_size", None)
        )

    def poll(self):
        """Raise if the run's cancellation token is cancelled or expired."""
        if self.cancellation is not None:
            self.cancellation.poll()

    @property
    def parallelism(self):
        return self._environment.parallelism

    @property
    def memory_records_per_worker(self):
        return self._environment.cost_model.memory_records_per_worker

    def evaluate(self, operator, cache):
        """Evaluate a sub-DAG (used by bulk iteration)."""
        return self._environment._evaluate(operator, cache, self)

    # Shuffle primitives ---------------------------------------------------

    def hash_shuffle(self, partitions, key_fn):
        """Redistribute records so equal keys share a worker.

        When every partition is columnar and the key reader carries a
        compiled ``columnar_shuffle`` kernel (single id-column join keys),
        the split slices chunk columns instead of materializing row
        objects; the returned stats are byte-identical to the per-record
        loop below.
        """
        parallelism = self.parallelism
        kernel = getattr(key_fn, "columnar_shuffle", None)
        if kernel is not None and all(
            getattr(partition, "chunks", None) is not None
            for partition in partitions
        ):
            shuffled, records, moved_bytes, bytes_in = kernel(
                partitions, parallelism
            )
            stats = ShuffleStats(parallelism)
            stats.records = records
            stats.bytes = moved_bytes
            stats.bytes_in = list(bytes_in)
            return shuffled, stats
        out = [[] for _ in range(parallelism)]
        stats = ShuffleStats(parallelism)
        for source_worker, partition in enumerate(partitions):
            for record in partition:
                target = partition_index(key_fn(record), parallelism)
                out[target].append(record)
                if target != source_worker:
                    size = estimate_size(record)
                    stats.records += 1
                    stats.bytes += size
                    stats.bytes_in[target] += size
        return out, stats

    def broadcast(self, partitions):
        """Replicate a dataset's records to every worker.

        Columnar partitions broadcast by *sharing* their immutable chunks
        (no copy, no decode); the stats equal the per-record accounting
        because a chunk's byte size is the sum of its rows' serialized
        sizes.
        """
        parallelism = self.parallelism
        stats = ShuffleStats(parallelism)
        if partitions and all(
            getattr(partition, "chunks", None) is not None
            for partition in partitions
        ):
            chunks = [
                chunk for partition in partitions for chunk in partition.chunks
            ]
            total_records = sum(chunk.count for chunk in chunks)
            total_bytes = sum(chunk.byte_size() for chunk in chunks)
            stats.records = total_records * max(parallelism - 1, 0)
            stats.bytes = total_bytes * max(parallelism - 1, 0)
            for worker in range(parallelism):
                stats.bytes_in[worker] = total_bytes
            partition_cls = type(partitions[0])
            return [
                partition_cls(chunks) for _ in range(parallelism)
            ], stats
        everything = [record for partition in partitions for record in partition]
        total_bytes = sum(estimate_size(record) for record in everything)
        stats.records = len(everything) * max(parallelism - 1, 0)
        stats.bytes = total_bytes * max(parallelism - 1, 0)
        for worker in range(parallelism):
            stats.bytes_in[worker] = total_bytes
        return [list(everything) for _ in range(parallelism)], stats

    def record_run(
        self,
        name,
        parent_partition_sets,
        out_partitions,
        shuffle=None,
        spilled_workers=0,
        worker_work=None,
    ):
        """Append an OperatorRun for a finished operator execution.

        ``worker_work`` overrides the per-worker input distribution; shuffle
        operators pass their post-shuffle partition sizes so that skew
        reflects the work each worker actually performs.
        """
        from .metrics import OperatorRun

        if worker_work is not None:
            worker_in = list(worker_work)
        else:
            worker_in = [0] * self.parallelism
            for partitions in parent_partition_sets:
                for worker, partition in enumerate(partitions):
                    worker_in[worker] += len(partition)
        run = OperatorRun(
            name=name,
            records_in=sum(worker_in),
            records_out=sum(len(p) for p in out_partitions),
            worker_records_in=worker_in,
            worker_records_out=[len(p) for p in out_partitions],
            iteration=self.iteration,
        )
        if shuffle is not None:
            run.shuffled_records = shuffle.records
            run.shuffled_bytes = shuffle.bytes
            run.worker_shuffle_bytes_in = list(shuffle.bytes_in)
        run.spilled_workers = spilled_workers
        self._metrics.add(run)
        return run

    def record_stage_run(self, name, worker_in, worker_out):
        """Append the OperatorRun of one stage inside a fused chain.

        Fused chains execute several logical operators in one loop but
        must leave the metrics stream indistinguishable from per-record
        execution (the simulated cost model reads it); this produces
        exactly what :meth:`record_run` records for a partition-local
        operator — no shuffle, no spills, the evaluating run's iteration.
        """
        from .metrics import OperatorRun

        run = OperatorRun(
            name=name,
            records_in=sum(worker_in),
            records_out=sum(worker_out),
            worker_records_in=list(worker_in),
            worker_records_out=list(worker_out),
            iteration=self.iteration,
        )
        self._metrics.add(run)
        return run


class Operator:
    """Base class for DAG nodes."""

    display = "operator"

    def __init__(self, environment, parents, name=None):
        self.id = next(_ids)
        self.environment = environment
        self.parents = list(parents)
        self.name = name or self.display

    def execute(self, ctx, parent_partition_sets):
        raise NotImplementedError

    def _call(self, fn, *args):
        try:
            return fn(*args)
        except Exception as exc:  # noqa: BLE001 — rewrap with operator context
            if getattr(exc, "propagate_unwrapped", False):
                # the error names its own context (e.g. SanitizerError
                # pointing at a plan operator) — wrapping would bury it
                raise
            raise JobExecutionError(self.name, exc) from exc


class SourceOperator(Operator):
    """Materialized input split round-robin across workers."""

    display = "source"

    def __init__(self, environment, items, name=None):
        super().__init__(environment, [], name)
        self._partitions = round_robin_partitions(list(items), environment.parallelism)

    def execute(self, ctx, parent_partition_sets):
        out = [list(p) for p in self._partitions]
        ctx.record_run(self.name, [], out)
        return out


class PartitionedSourceOperator(Operator):
    """Input that is already partitioned (e.g. an iteration's working set)."""

    display = "partitioned-source"

    def __init__(self, environment, partitions, name=None):
        super().__init__(environment, [], name)
        if len(partitions) != environment.parallelism:
            raise ValueError(
                "expected %d partitions, got %d"
                % (environment.parallelism, len(partitions))
            )
        self.partitions = partitions

    def execute(self, ctx, parent_partition_sets):
        out = [list(p) for p in self.partitions]
        ctx.record_run(self.name, [], out)
        return out


class MapOperator(Operator):
    display = "map"

    def __init__(self, environment, parent, fn, name=None):
        super().__init__(environment, [parent], name)
        self.fn = fn

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        out = [[self._call(self.fn, r) for r in p] for p in partitions]
        ctx.record_run(self.name, parent_partition_sets, out)
        return out


class FlatMapOperator(Operator):
    display = "flat-map"

    def __init__(self, environment, parent, fn, name=None):
        super().__init__(environment, [parent], name)
        self.fn = fn

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        token = ctx.cancellation
        out = []
        for partition in partitions:
            produced = []
            for index, record in enumerate(partition):
                if token is not None and index & _POLL_MASK == 0:
                    token.poll()
                produced.extend(self._call(self.fn, record))
            out.append(produced)
        ctx.record_run(self.name, parent_partition_sets, out)
        return out


class FilterOperator(Operator):
    display = "filter"

    def __init__(self, environment, parent, predicate, name=None):
        super().__init__(environment, [parent], name)
        self.predicate = predicate

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        out = [[r for r in p if self._call(self.predicate, r)] for p in partitions]
        ctx.record_run(self.name, parent_partition_sets, out)
        return out


class MapPartitionOperator(Operator):
    display = "map-partition"

    def __init__(self, environment, parent, fn, name=None):
        super().__init__(environment, [parent], name)
        self.fn = fn

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        out = [list(self._call(self.fn, iter(p))) for p in partitions]
        ctx.record_run(self.name, parent_partition_sets, out)
        return out


class UnionOperator(Operator):
    """Partition-wise concatenation; no data movement."""

    display = "union"

    def __init__(self, environment, left, right, name=None):
        super().__init__(environment, [left, right], name)

    def execute(self, ctx, parent_partition_sets):
        left, right = parent_partition_sets
        out = [list(l) + list(r) for l, r in zip(left, right)]
        ctx.record_run(self.name, parent_partition_sets, out)
        return out


class RebalanceOperator(Operator):
    """Round-robin redistribution to even out partition sizes."""

    display = "rebalance"

    def __init__(self, environment, parent, name=None):
        super().__init__(environment, [parent], name)

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        parallelism = ctx.parallelism
        out = [[] for _ in range(parallelism)]
        stats = ShuffleStats(parallelism)
        cursor = 0
        for source_worker, partition in enumerate(partitions):
            for record in partition:
                target = cursor % parallelism
                cursor += 1
                out[target].append(record)
                if target != source_worker:
                    size = estimate_size(record)
                    stats.records += 1
                    stats.bytes += size
                    stats.bytes_in[target] += size
        ctx.record_run(self.name, parent_partition_sets, out, shuffle=stats)
        return out


class BulkIterationOperator(Operator):
    """Flink-style bulk iteration as a *lazy* DAG node.

    The superstep loop runs inside :meth:`execute` — at evaluation time,
    under the evaluating run's metrics and cancellation token — not at
    DAG-construction time like :meth:`ExecutionEnvironment.bulk_iterate`.
    Plans that are built once and executed many times (prepared statements
    re-binding ``$parameters``) therefore re-iterate on every execution
    instead of replaying the first execution's materialized supersteps.
    """

    display = "bulk-iteration"

    def __init__(self, environment, initial, step, max_iterations,
                 collect_emissions=True, name=None):
        super().__init__(environment, [initial], name)
        self.step = step
        self.max_iterations = max_iterations
        self.collect_emissions = collect_emissions

    def execute(self, ctx, parent_partition_sets):
        from .errors import IterationError

        environment = self.environment
        (working,) = parent_partition_sets
        emitted = [[] for _ in range(ctx.parallelism)]
        for iteration in range(1, self.max_iterations + 1):
            if sum(len(p) for p in working) == 0:
                break
            iter_ctx = ExecutionContext(
                environment,
                ctx._metrics,
                iteration=iteration,
                cancellation=ctx.cancellation,
                fused=ctx.fused,
                batch_size=ctx.batch_size,
                pool=ctx.pool,
                columnar=ctx.columnar,
            )
            working_ds = environment.from_partitions(
                working, name="iteration-working-set"
            )
            result = self.step(working_ds, iteration)
            if isinstance(result, tuple):
                next_working_ds, emit_ds = result
            else:
                next_working_ds, emit_ds = result, None
            if next_working_ds is None:
                raise IterationError("step returned no next working set")
            # fresh cache per superstep, like the eager primitive: only
            # this iteration's sub-DAG is shared between working set and
            # emissions
            cache = {}
            working = environment._evaluate(
                next_working_ds.operator, cache, iter_ctx
            )
            if emit_ds is not None and self.collect_emissions:
                emit_parts = environment._evaluate(
                    emit_ds.operator, cache, iter_ctx
                )
                for worker, partition in enumerate(emit_parts):
                    emitted[worker].extend(partition)
        if self.collect_emissions:
            return emitted
        return [list(p) for p in working]


class PartitionByOperator(Operator):
    """Explicit hash partitioning by a key function."""

    display = "partition-by"

    def __init__(self, environment, parent, key_fn, name=None):
        super().__init__(environment, [parent], name)
        self.key_fn = key_fn

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        out, stats = ctx.hash_shuffle(
            partitions, lambda record: self._call(self.key_fn, record)
        )
        ctx.record_run(self.name, parent_partition_sets, out, shuffle=stats)
        return out


class DistinctOperator(Operator):
    """Key-based deduplication (shuffle + per-worker hash set)."""

    display = "distinct"

    def __init__(self, environment, parent, key_fn=None, name=None):
        super().__init__(environment, [parent], name)
        self.key_fn = key_fn if key_fn is not None else _identity

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        shuffled, stats = ctx.hash_shuffle(
            partitions, lambda record: self._call(self.key_fn, record)
        )
        out = []
        spilled = 0
        for partition in shuffled:
            if len(partition) > ctx.memory_records_per_worker:
                spilled += 1
            seen = set()
            kept = []
            for record in partition:
                key = _hashable(self._call(self.key_fn, record))
                if key not in seen:
                    seen.add(key)
                    kept.append(record)
            out.append(kept)
        ctx.record_run(
            self.name,
            parent_partition_sets,
            out,
            shuffle=stats,
            spilled_workers=spilled,
            worker_work=[len(p) for p in shuffled],
        )
        return out


class GroupReduceOperator(Operator):
    """Shuffle by key, then apply ``reduce_fn(key, records) -> iterable``."""

    display = "group-reduce"

    def __init__(self, environment, parent, key_fn, reduce_fn, name=None):
        super().__init__(environment, [parent], name)
        self.key_fn = key_fn
        self.reduce_fn = reduce_fn

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        shuffled, stats = ctx.hash_shuffle(
            partitions, lambda record: self._call(self.key_fn, record)
        )
        out = []
        spilled = 0
        for partition in shuffled:
            ctx.poll()
            if len(partition) > ctx.memory_records_per_worker:
                spilled += 1
            groups = {}
            order = []
            for record in partition:
                key = _hashable(self._call(self.key_fn, record))
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(record)
            produced = []
            for key in order:
                produced.extend(self._call(self.reduce_fn, key, groups[key]))
            out.append(produced)
        ctx.record_run(
            self.name,
            parent_partition_sets,
            out,
            shuffle=stats,
            spilled_workers=spilled,
            worker_work=[len(p) for p in shuffled],
        )
        return out


class JoinOperator(Operator):
    """Equi-join with selectable physical strategy.

    ``join_fn(left, right)`` has FlatJoin semantics: it returns an iterable
    of output records, so morphism checks can drop pairs without a second
    filter pass (paper §3.1).
    """

    display = "join"
    # Broadcasting pays off when one side is small in absolute terms and
    # much smaller than the other; mirrors Flink's size-based heuristic.
    _BROADCAST_LIMIT = 10_000
    _BROADCAST_RATIO = 8

    def __init__(
        self,
        environment,
        left,
        right,
        left_key,
        right_key,
        join_fn=None,
        strategy=JoinStrategy.AUTO,
        name=None,
    ):
        super().__init__(environment, [left, right], name)
        self.left_key = left_key
        self.right_key = right_key
        self.join_fn = join_fn if join_fn is not None else _pair
        self.strategy = strategy
        self.chosen_strategy = None

    def _choose(self, left_count, right_count):
        if self.strategy is not JoinStrategy.AUTO:
            return self.strategy
        smaller, larger = sorted((left_count, right_count))
        if smaller <= self._BROADCAST_LIMIT and larger >= smaller * self._BROADCAST_RATIO:
            if left_count <= right_count:
                return JoinStrategy.BROADCAST_FIRST
            return JoinStrategy.BROADCAST_SECOND
        return JoinStrategy.REPARTITION_HASH

    def execute(self, ctx, parent_partition_sets):
        left_parts, right_parts = parent_partition_sets
        left_count = sum(len(p) for p in left_parts)
        right_count = sum(len(p) for p in right_parts)
        strategy = self._choose(left_count, right_count)
        self.chosen_strategy = strategy

        stats = ShuffleStats(ctx.parallelism)
        pool = (
            ctx.pool if strategy is JoinStrategy.REPARTITION_HASH else None
        )
        if pool is not None and pool.join_shippable(self):
            out, spilled, worker_work = self._pooled_exchange_join(
                pool, left_parts, right_parts, ctx, stats
            )
            ctx.record_run(
                "%s[%s]" % (self.name, strategy.value),
                parent_partition_sets,
                out,
                shuffle=stats,
                spilled_workers=spilled,
                worker_work=worker_work,
            )
            return out
        if strategy is JoinStrategy.BROADCAST_FIRST:
            left_local, s = ctx.broadcast(left_parts)
            stats.merge(s)
            # columnar partitions stay columnar on the non-broadcast side
            # so the local join can run its chunk kernel
            right_local = [
                p if getattr(p, "chunks", None) is not None else list(p)
                for p in right_parts
            ]
        elif strategy is JoinStrategy.BROADCAST_SECOND:
            right_local, s = ctx.broadcast(right_parts)
            stats.merge(s)
            left_local = [
                p if getattr(p, "chunks", None) is not None else list(p)
                for p in left_parts
            ]
        else:  # repartition-based strategies co-locate equal keys
            # the key functions run bare (no per-record _call frames);
            # one try/except per shuffle keeps the error contract
            try:
                left_local, s1 = ctx.hash_shuffle(left_parts, self.left_key)
                right_local, s2 = ctx.hash_shuffle(right_parts, self.right_key)
            except Exception as exc:  # noqa: BLE001 — rewrap with context
                if getattr(exc, "propagate_unwrapped", False):
                    raise
                raise JobExecutionError(self.name, exc) from exc
            stats.merge(s1)
            stats.merge(s2)

        pool = (
            ctx.pool if strategy is not JoinStrategy.SORT_MERGE else None
        )
        if pool is not None and pool.join_shippable(self):
            out, spilled = self._pooled_pairs_join(
                pool, left_local, right_local, ctx
            )
        else:
            out = []
            spilled = 0
            spec = getattr(self.join_fn, "columnar_join", None)
            for left_partition, right_partition in zip(
                left_local, right_local
            ):
                ctx.poll()  # batch boundary: one worker's partition pair
                build, probe, build_is_left = self._pick_sides(
                    left_partition, right_partition
                )
                if len(build) > ctx.memory_records_per_worker:
                    spilled += 1
                if strategy is JoinStrategy.SORT_MERGE:
                    produced = self._sort_merge(
                        left_partition, right_partition, ctx
                    )
                elif (
                    spec is not None
                    and getattr(build, "chunks", None) is not None
                    and getattr(probe, "chunks", None) is not None
                ):
                    produced = self._columnar_hash_join(
                        spec, build, probe, build_is_left, ctx
                    )
                else:
                    produced = self._hash_join(
                        build, probe, build_is_left, ctx
                    )
                out.append(produced)

        name = "%s[%s]" % (self.name, strategy.value)
        worker_work = [
            len(l) + len(r) for l, r in zip(left_local, right_local)
        ]
        ctx.record_run(
            name,
            parent_partition_sets,
            out,
            shuffle=stats,
            spilled_workers=spilled,
            worker_work=worker_work,
        )
        return out

    def _pooled_pairs_join(self, pool, left_local, right_local, ctx):
        """Ship already-co-located hash-join pairs to the worker pool.

        The broadcast strategies replicate the small side in-parent (a
        list copy), leaving per-partition ``(build, probe)`` pairs the
        workers execute with the exact ``_hash_join`` loop — results
        are order-identical and the spill accounting below stays
        byte-for-byte the same.  Empty pairs never ship — their result
        is the empty partition.
        """
        ctx.poll()  # batch boundary: one poll before the dispatch
        out = [None] * len(left_local)
        spilled = 0
        pairs = []
        shipped_indexes = []
        for index, (left_partition, right_partition) in enumerate(
            zip(left_local, right_local)
        ):
            build, probe, build_is_left = self._pick_sides(
                left_partition, right_partition
            )
            if len(build) > ctx.memory_records_per_worker:
                spilled += 1
            if not build or not probe:
                out[index] = []
                continue
            pairs.append((build, probe, build_is_left))
            shipped_indexes.append(index)
        if pairs:
            produced = pool.run_join(self, pairs, ctx.cancellation)
            for index, records in zip(shipped_indexes, produced):
                out[index] = records
        return out, spilled

    def _pooled_exchange_join(self, pool, left_parts, right_parts, ctx,
                              stats):
        """Run the repartition exchange *and* the join on the worker pool.

        The workers hash-partition both inputs by join key — the parent
        relays only cross-worker splits, as opaque bytes — and join each
        co-partitioned pair on the worker that owns it.  The returned
        per-target counts rebuild the exact ShuffleStats, spill and
        ``worker_work`` accounting the in-process path computes, so the
        simulated cost model cannot tell the two paths apart.
        """
        ctx.poll()  # batch boundary: one poll before the exchange
        out, moved, left_counts, right_counts = pool.run_repartition_join(
            self, left_parts, right_parts, ctx.cancellation
        )
        moved_records, moved_bytes, bytes_in = moved
        stats.records += moved_records
        stats.bytes += moved_bytes
        for target, size in enumerate(bytes_in):
            stats.bytes_in[target] += size
        limit = ctx.memory_records_per_worker
        spilled = sum(
            1
            for left_count, right_count in zip(left_counts, right_counts)
            if min(left_count, right_count) > limit
        )
        worker_work = [
            left_count + right_count
            for left_count, right_count in zip(left_counts, right_counts)
        ]
        return out, spilled, worker_work

    def _pick_sides(self, left_partition, right_partition):
        if len(left_partition) <= len(right_partition):
            return left_partition, right_partition, True
        return right_partition, left_partition, False

    def _columnar_hash_join(self, spec, build, probe, build_is_left, ctx):
        """Chunk-level hash join via the engine-compiled join spec.

        Output rows appear in the exact probe-order × build-order the
        per-record ``_hash_join`` produces; the result is wrapped in the
        same columnar partition type so downstream kernels keep operating
        without decoding."""
        try:
            chunks = spec.hash_join(
                build.chunks, probe.chunks, build_is_left, ctx.cancellation
            )
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise
            raise JobExecutionError(self.name, exc) from exc
        return type(build)(chunks)

    def _hash_join(self, build, probe, build_is_left, ctx):
        """Batch-wise hash join: build, then probe, without per-record
        ``_call`` frames — one try/except around each phase preserves the
        exact error wrapping at a fraction of the per-record cost."""
        build_key = self.left_key if build_is_left else self.right_key
        probe_key = self.right_key if build_is_left else self.left_key
        join_fn = self.join_fn
        token = ctx.cancellation
        table = {}
        setdefault = table.setdefault
        produced = []
        extend = produced.extend
        try:
            for record in build:
                setdefault(_hashable(build_key(record)), []).append(record)
            get = table.get
            if build_is_left:
                for index, probe_record in enumerate(probe):
                    if token is not None and index & _POLL_MASK == 0:
                        token.poll()
                    matches = get(_hashable(probe_key(probe_record)))
                    if not matches:
                        continue
                    for build_record in matches:
                        extend(join_fn(build_record, probe_record))
            else:
                for index, probe_record in enumerate(probe):
                    if token is not None and index & _POLL_MASK == 0:
                        token.poll()
                    matches = get(_hashable(probe_key(probe_record)))
                    if not matches:
                        continue
                    for build_record in matches:
                        extend(join_fn(probe_record, build_record))
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise
            raise JobExecutionError(self.name, exc) from exc
        return produced

    def _sort_merge(self, left_partition, right_partition, ctx):
        left_sorted = sorted(
            left_partition, key=lambda r: stable_hash(self._call(self.left_key, r))
        )
        right_sorted = sorted(
            right_partition, key=lambda r: stable_hash(self._call(self.right_key, r))
        )
        token = ctx.cancellation
        produced = []
        steps = 0
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            steps += 1
            if token is not None and steps & _POLL_MASK == 0:
                token.poll()
            lk = stable_hash(self._call(self.left_key, left_sorted[i]))
            rk = stable_hash(self._call(self.right_key, right_sorted[j]))
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                i_end = i
                while (
                    i_end < len(left_sorted)
                    and stable_hash(self._call(self.left_key, left_sorted[i_end])) == lk
                ):
                    i_end += 1
                j_end = j
                while (
                    j_end < len(right_sorted)
                    and stable_hash(self._call(self.right_key, right_sorted[j_end])) == rk
                ):
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        left_record = left_sorted[li]
                        right_record = right_sorted[rj]
                        # hash equality is necessary but not sufficient
                        if self._call(self.left_key, left_record) == self._call(
                            self.right_key, right_record
                        ):
                            produced.extend(
                                self._call(self.join_fn, left_record, right_record)
                            )
                i, j = i_end, j_end
        return produced


class CrossOperator(Operator):
    """Cartesian product: the right side is broadcast."""

    display = "cross"

    def __init__(self, environment, left, right, fn=None, name=None):
        super().__init__(environment, [left, right], name)
        self.fn = fn if fn is not None else _pair_single

    def execute(self, ctx, parent_partition_sets):
        left_parts, right_parts = parent_partition_sets
        right_local, stats = ctx.broadcast(right_parts)
        token = ctx.cancellation
        out = []
        fn = self.fn
        for left_partition, right_partition in zip(left_parts, right_local):
            ctx.poll()
            produced = []
            append = produced.append
            try:
                for index, left_record in enumerate(left_partition):
                    if token is not None and index & _POLL_MASK == 0:
                        token.poll()
                    for right_record in right_partition:
                        append(fn(left_record, right_record))
            except Exception as exc:  # noqa: BLE001 — rewrap with context
                if getattr(exc, "propagate_unwrapped", False):
                    raise
                raise JobExecutionError(self.name, exc) from exc
            out.append(produced)
        ctx.record_run(self.name, parent_partition_sets, out, shuffle=stats)
        return out


def _identity(record):
    return record


def _pair(left, right):
    return [(left, right)]


def _pair_single(left, right):
    return (left, right)


def _hashable(key):
    """Coerce mutable key types to hashable equivalents."""
    if isinstance(key, bytearray):
        return bytes(key)
    if isinstance(key, list):
        return tuple(_hashable(part) for part in key)
    return key

"""Execution metrics for simulated dataflow jobs.

Every operator execution appends one :class:`OperatorRun` to the
environment's :class:`JobMetrics`.  The cost model
(:mod:`repro.dataflow.cost`) turns these runs into a simulated wall-clock
runtime; the benchmark harness reads them directly for shuffle-volume and
skew reporting.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass
class OperatorRun:
    """Metrics for a single operator execution.

    Attributes:
        name: Operator display name (e.g. ``"join[repartition-hash]"``).
        records_in: Total input records across all workers.
        records_out: Total output records across all workers.
        worker_records_in: Input records per worker (skew indicator).
        worker_records_out: Output records per worker.
        shuffled_records: Records moved across the (simulated) network.
        shuffled_bytes: Estimated bytes moved across the network.
        worker_shuffle_bytes_in: Bytes received per worker during shuffles.
        spilled_workers: Workers whose in-memory working set exceeded the
            configured per-worker memory budget (join build sides, sorts).
        iteration: Bulk-iteration superstep this run belongs to, or ``None``.
    """

    name: str
    records_in: int = 0
    records_out: int = 0
    worker_records_in: List[int] = field(default_factory=list)
    worker_records_out: List[int] = field(default_factory=list)
    shuffled_records: int = 0
    shuffled_bytes: int = 0
    worker_shuffle_bytes_in: List[int] = field(default_factory=list)
    spilled_workers: int = 0
    iteration: int = None

    @property
    def max_worker_records_in(self):
        return max(self.worker_records_in) if self.worker_records_in else 0

    @property
    def skew(self):
        """Ratio of the busiest worker's input to the mean input.

        1.0 means perfectly balanced; large values explain stagnating
        speedups (paper §4.1).
        """
        if not self.worker_records_in:
            return 1.0
        mean = sum(self.worker_records_in) / len(self.worker_records_in)
        if mean == 0:
            return 1.0
        return self.max_worker_records_in / mean


class JobMetrics:
    """Accumulates :class:`OperatorRun` entries for one logical job."""

    def __init__(self, name="job"):
        self.name = name
        self.runs = []

    def add(self, run):
        self.runs.append(run)

    # Aggregates -----------------------------------------------------------

    @property
    def total_records_processed(self):
        return sum(run.records_in for run in self.runs)

    @property
    def total_shuffled_records(self):
        return sum(run.shuffled_records for run in self.runs)

    @property
    def total_shuffled_bytes(self):
        return sum(run.shuffled_bytes for run in self.runs)

    @property
    def total_spilled_workers(self):
        return sum(run.spilled_workers for run in self.runs)

    @property
    def max_skew(self):
        return max((run.skew for run in self.runs), default=1.0)

    def runs_named(self, prefix):
        """All runs whose name starts with ``prefix``."""
        return [run for run in self.runs if run.name.startswith(prefix)]

    def summary(self):
        """A compact dict view used by the benchmark harness."""
        return {
            "operators": len(self.runs),
            "records_processed": self.total_records_processed,
            "shuffled_records": self.total_shuffled_records,
            "shuffled_bytes": self.total_shuffled_bytes,
            "spilled_workers": self.total_spilled_workers,
            "max_skew": round(self.max_skew, 3),
        }

    def __repr__(self):
        return "JobMetrics(%s, %d runs, %d shuffled)" % (
            self.name,
            len(self.runs),
            self.total_shuffled_records,
        )

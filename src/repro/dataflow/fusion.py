"""Operator fusion: batched execution of partition-local operator chains.

Flink chains pipelined operators into single tasks so records never cross
an operator boundary through a function-call-per-record indirection.  This
module reproduces that optimization for the simulated dataflow: a *fusion
pass* (:func:`plan_fusion`) collapses maximal chains of partition-local
operators (map / filter / flat-map) into one :class:`FusedChainOperator`
whose execution is a single compiled per-partition loop.  Partitions flow
through the loop in chunks of ``batch_size`` records with one cancellation
poll per chunk, and the per-stage metrics are reconstructed from loop
counters afterwards — bit-identical to what per-record execution records,
so the simulated cost accounting does not change.

What fuses: ``MapOperator``, ``FilterOperator``, ``FlatMapOperator`` (the
exact classes — subclasses may override ``execute`` and are left alone).
Everything else — sources, shuffles, joins, unions, ``map_partition``,
bulk iterations — is a pipeline break.  Operators already materialized in
the evaluation cache, and operators feeding more than one consumer, break
the chain as well: their output must exist as a standalone partition set.
"""

from typing import Any, Callable, Dict, Tuple

from .cancellation import POLL_INTERVAL  # noqa: F401  (re-export context)
from .errors import JobExecutionError
from .operators import (
    FilterOperator,
    FlatMapOperator,
    MapOperator,
    Operator,
)

from repro.locks import named_lock

#: default chunk length of batched execution; roughly amortizes the
#: per-chunk bookkeeping without hurting cache locality of the records
DEFAULT_BATCH_SIZE = 1024

#: the fusable operator classes and their loop-template role
_STAGE_KINDS = {
    MapOperator: "map",
    FilterOperator: "filter",
    FlatMapOperator: "flatmap",
}

_template_lock = named_lock("dataflow.fusion")
#: chain shape (e.g. ``('flatmap', 'filter', 'map')``) → compiled chunk
#: loop; shared by every environment in the process.
_templates: Dict[Tuple[str, ...], Callable[..., tuple]] = {}  # guarded-by: _template_lock

#: lazily-bound ColumnarPartition class — the dataflow layer never imports
#: the engine at module scope (layering), so the columnar execute path
#: resolves it on first use; single-assignment, benign under races
_columnar_partition_cls = None


def _render_template(shape: Tuple[str, ...]) -> str:
    """Source of the fused chunk loop for one chain ``shape``.

    The generated function walks one chunk of records through every stage
    without per-record dispatch; ``append`` collects survivors and the
    returned tuple carries one output counter per record-count-changing
    stage (filter / flat-map) so per-stage metrics can be reconstructed.
    """
    pad = "    "
    names = ["f%d" % index for index in range(len(shape))]
    counters = ["c%d" % index for index, kind in enumerate(shape)
                if kind != "map"]
    lines = ["def _fused_chunk(chunk, append, %s):" % ", ".join(names)]
    if counters:
        lines.append(pad + " = ".join(counters) + " = 0")
    lines.append(pad + "for r0 in chunk:")
    depth = 2
    var = "r0"
    for index, kind in enumerate(shape):
        fn = "f%d" % index
        if kind == "map":
            nxt = "r%d" % (index + 1)
            lines.append(pad * depth + "%s = %s(%s)" % (nxt, fn, var))
            var = nxt
        elif kind == "filter":
            lines.append(pad * depth + "if not %s(%s):" % (fn, var))
            lines.append(pad * (depth + 1) + "continue")
            lines.append(pad * depth + "c%d += 1" % index)
        else:  # flatmap
            nxt = "r%d" % (index + 1)
            lines.append(pad * depth + "for %s in %s(%s):" % (nxt, fn, var))
            depth += 1
            lines.append(pad * depth + "c%d += 1" % index)
            var = nxt
    lines.append(pad * depth + "append(%s)" % var)
    if counters:
        lines.append(pad + "return (%s,)" % ", ".join(counters))
    else:
        lines.append(pad + "return ()")
    return "\n".join(lines) + "\n"


def _chunk_template(shape: Tuple[str, ...]) -> Callable[..., tuple]:
    """The compiled chunk loop for ``shape`` (process-wide, cached)."""
    with _template_lock:
        compiled = _templates.get(shape)
    if compiled is not None:
        return compiled
    source = _render_template(shape)
    namespace: Dict[str, Any] = {}
    exec(  # noqa: S102 — the source is generated above, never user input
        compile(source, "<fused:%s>" % "+".join(shape), "exec"), namespace
    )
    compiled = namespace["_fused_chunk"]
    with _template_lock:
        # setdefault keeps the first compile if another thread raced us,
        # so every caller observes one stable function per shape
        return _templates.setdefault(shape, compiled)


class FusedChainOperator(Operator):
    """One compiled loop standing in for a chain of map/filter/flat-maps.

    The chain's stages keep their identity for metrics and error
    attribution: the loop counts per-stage outputs and
    :meth:`ExecutionContext.record_stage_run` emits one
    :class:`~repro.dataflow.metrics.OperatorRun` per stage, identical to
    what per-record execution would have recorded; a failing chunk is
    replayed record-by-record through the original operators so the raised
    :class:`JobExecutionError` names the stage that actually failed.
    """

    display = "fused-chain"

    def __init__(self, environment, parent, stages, batch_size):
        super().__init__(
            environment,
            [parent],
            "fused[%s]" % "+".join(stage.name for stage in stages),
        )
        self.stages = list(stages)
        #: id of the chain's last stage; the evaluator aliases this node's
        #: result under it so downstream parent lookups resolve
        self.terminal_id = stages[-1].id
        self.batch_size = batch_size
        self._shape = tuple(_STAGE_KINDS[type(stage)] for stage in stages)
        self._fns = tuple(
            stage.predicate if isinstance(stage, FilterOperator) else stage.fn
            for stage in stages
        )
        self._chunk = _chunk_template(self._shape)
        # columnar kernels ride on the stage closures as plain attributes
        # (attached by the engine layer).  A chain is chunk-capable when
        # every stage carries a chunk→chunk kernel, and leaf-capable when
        # some flat-map stage carries an elements→chunk builder, every
        # stage after it has a chunk kernel, and the stages before it are
        # element-level (they run per-element over the batch — e.g. the
        # label scan feeding a leaf transform).
        self._kernels = tuple(
            getattr(fn, "columnar_kernel", None) for fn in self._fns
        )
        self._chunk_capable = all(
            kernel is not None for kernel in self._kernels
        )
        self._leaf_index = None
        self._leaf_kernel = None
        for index, (kind, fn) in enumerate(zip(self._shape, self._fns)):
            leaf = getattr(fn, "columnar_leaf", None)
            if kind == "flatmap" and leaf is not None:
                if all(
                    kernel is not None
                    for kernel in self._kernels[index + 1:]
                ):
                    self._leaf_index = index
                    self._leaf_kernel = leaf
                break
        self._leaf_capable = self._leaf_index is not None

    def execute(self, ctx, parent_partition_sets):
        (partitions,) = parent_partition_sets
        pool = getattr(ctx, "pool", None)
        if pool is not None and pool.chain_shippable(self):
            return self._execute_pooled(ctx, pool, partitions)
        token = ctx.cancellation
        batch = self.batch_size
        chunk_fn = self._chunk
        fns = self._fns
        zeros = (0,) * sum(1 for kind in self._shape if kind != "map")
        columnar = getattr(ctx, "columnar", False) and (
            self._chunk_capable or self._leaf_capable
        )
        out = []
        worker_counts = []
        for partition in partitions:
            if columnar:
                result = self._execute_columnar(token, partition, zeros)
                if result is not None:
                    columnar_out, totals = result
                    out.append(columnar_out)
                    worker_counts.append(totals)
                    continue
            produced = []
            append = produced.append
            totals = zeros
            for start in range(0, len(partition), batch):
                # one cancellation poll per chunk, not per record
                if token is not None:
                    token.poll()
                chunk = (
                    partition
                    if start == 0 and len(partition) <= batch
                    else partition[start:start + batch]
                )
                try:
                    counts = chunk_fn(chunk, append, *fns)
                except Exception as exc:  # noqa: BLE001 — re-attributed below
                    self._replay_chunk(chunk, exc)
                totals = tuple(a + b for a, b in zip(totals, counts))
            out.append(produced)
            worker_counts.append(totals)
        self._record_stage_runs(ctx, partitions, worker_counts, out)
        return out

    def _execute_columnar(self, token, partition, zeros):
        """Run the chain as chunk kernels over one partition.

        Returns ``(ColumnarPartition, stage_totals)`` or ``None`` when the
        partition's shape does not fit the compiled kernels (a plain
        record list feeding a chain without a leaf builder, or chunks
        feeding a chain with a kernel gap) — the caller falls back to the
        per-record loop for that partition.  Stage totals count chunk rows
        after each non-map stage, matching the per-record counters.
        """
        chunks_in = getattr(partition, "chunks", None)
        if chunks_in is not None:
            if not self._chunk_capable:
                return None
            sources = chunks_in
            leaf_index = None
        else:
            if not self._leaf_capable:
                return None
            leaf_index = self._leaf_index
            batch = self.batch_size
            if len(partition) <= batch:
                sources = [partition]
            else:
                sources = [
                    partition[start:start + batch]
                    for start in range(0, len(partition), batch)
                ]
        global _columnar_partition_cls
        if _columnar_partition_cls is None:
            from repro.engine.columnar import ColumnarPartition

            _columnar_partition_cls = ColumnarPartition
        shape = self._shape
        kernels = self._kernels
        fns = self._fns
        leaf = self._leaf_kernel
        totals = list(zeros)
        produced = []
        for source in sources:
            # one cancellation poll per chunk, like the per-record loop
            if token is not None:
                token.poll()
            current = source
            counter = 0
            try:
                for index, (kind, kernel) in enumerate(zip(shape, kernels)):
                    if leaf_index is not None and index < leaf_index:
                        # element-level prefix (e.g. the label scan):
                        # per-element, exactly like the per-record loop
                        fn = fns[index]
                        if kind == "map":
                            current = [fn(element) for element in current]
                        elif kind == "filter":
                            current = [
                                element for element in current
                                if fn(element)
                            ]
                            totals[counter] += len(current)
                            counter += 1
                        else:
                            flattened = []
                            for element in current:
                                flattened.extend(fn(element))
                            current = flattened
                            totals[counter] += len(current)
                            counter += 1
                        continue
                    if index == leaf_index:
                        current = leaf(current)
                    else:
                        current = kernel(current)
                    if kind != "map":
                        totals[counter] += current.count
                        counter += 1
            except Exception as exc:  # noqa: BLE001 — re-attributed below
                records = (
                    list(source) if leaf_index is not None
                    else source.to_embeddings()
                )
                self._replay_chunk(records, exc)
            if current.count:
                produced.append(current)
        return _columnar_partition_cls(produced), tuple(totals)

    def _execute_pooled(self, ctx, pool, partitions):
        """Ship the chain's partitions to the worker-process pool.

        The pool runs the *same* compiled chunk template over the same
        chunking and returns per-partition records plus the per-stage
        counter totals, so the metrics recorded below are bit-identical
        to in-process execution.  A worker-side failure arrives as the
        same stage-attributed :class:`JobExecutionError` the in-process
        replay would raise; cancellation is polled between chunks inside
        the worker and re-raised here through the run's token.  When the
        chain reads directly from an immutable source, its partitions
        stay resident in the owning workers across executions.
        """
        from .operators import SourceOperator

        parent = self.parents[0]
        source_key = parent.id if type(parent) is SourceOperator else None
        columnar = getattr(ctx, "columnar", False) and (
            self._chunk_capable or self._leaf_capable
        )
        out, worker_counts = pool.run_chain(
            self, partitions, ctx.cancellation, source_key=source_key,
            columnar=columnar,
        )
        self._record_stage_runs(ctx, partitions, worker_counts, out)
        return out

    def _replay_chunk(self, chunk, original):
        """Reproduce a chunk failure with per-record error attribution.

        The fused loop cannot tell which stage raised; replaying the chunk
        through the original operators' ``_call`` raises the exact
        :class:`JobExecutionError` (naming the failing stage) that
        per-record execution would have raised, and respects
        ``propagate_unwrapped`` errors like cancellation.
        """
        if getattr(original, "propagate_unwrapped", False):
            raise original
        records = list(chunk)
        for stage, kind in zip(self.stages, self._shape):
            produced = []
            if kind == "map":
                for record in records:
                    produced.append(stage._call(stage.fn, record))
            elif kind == "filter":
                for record in records:
                    if stage._call(stage.predicate, record):
                        produced.append(record)
            else:
                for record in records:
                    produced.extend(stage._call(stage.fn, record))
            records = produced
        # the replay did not fail (a non-deterministic function?) — fall
        # back to attributing the original error to the whole chain
        raise JobExecutionError(self.name, original) from original

    def _record_stage_runs(self, ctx, partitions, worker_counts, out):
        """Emit one OperatorRun per stage, matching per-record execution."""
        worker_in = [len(partition) for partition in partitions]
        counter = 0
        for stage, kind in zip(self.stages, self._shape):
            if kind == "map":
                worker_out = worker_in
            else:
                worker_out = [counts[counter] for counts in worker_counts]
                counter += 1
            ctx.record_stage_run(stage.name, worker_in, worker_out)
            worker_in = worker_out


def plan_fusion(root, batch_size: int, materialized=(), certify: bool = False) -> Dict[int, "FusedChainOperator"]:
    """The fusion pass: chains reachable from ``root`` → fused operators.

    Walks the DAG exactly like the evaluator (never descending into nodes
    already ``materialized`` in the evaluation cache), finds maximal
    chains of fusable operators whose links are single-consumer edges, and
    returns a rewrite map ``{chain terminal id: FusedChainOperator}``.
    Single-operator "chains" are fused too — even one stage saves the
    per-record ``_call`` wrapping.  The original operators are untouched;
    the evaluator resolves nodes through the rewrite map per run, so plan
    caching, ``reset()`` and unfused re-execution keep working.

    ``certify=True`` runs the ``P4xx`` UDF shippability analyzer over
    every chain before returning and raises
    :class:`~repro.analysis.udfcheck.ShippabilityError` on the first
    unshippable one — the gate multi-process execution puts in front of
    shipping a compiled chain to a worker.
    """
    materialized = set(materialized)
    if root.id in materialized:
        return {}
    fusable = {}
    sole_consumer = {}  # parent id → unique consumer node, or None if shared
    stack = [root]
    seen = {root.id}
    while stack:
        node = stack.pop()
        if type(node) in _STAGE_KINDS and node.id not in materialized:
            fusable[node.id] = node
        if node.id in materialized:
            continue
        for parent in node.parents:
            if parent.id in sole_consumer:
                if sole_consumer[parent.id] is not node:
                    sole_consumer[parent.id] = None
            else:
                sole_consumer[parent.id] = node
            if parent.id not in seen:
                seen.add(parent.id)
                stack.append(parent)

    merged = {}  # fusable op id → the fusable consumer that absorbs it
    for op_id, op in fusable.items():
        consumer = sole_consumer.get(op_id)
        if consumer is not None and consumer.id in fusable:
            merged[op_id] = consumer

    rewrites = {}
    for op_id, op in fusable.items():
        if op_id in merged:
            continue  # interior of a chain, absorbed by its consumer
        chain = [op]
        head = op
        while True:
            parent = head.parents[0]
            if parent.id in fusable and merged.get(parent.id) is head:
                chain.append(parent)
                head = parent
            else:
                break
        chain.reverse()
        rewrites[op_id] = FusedChainOperator(
            op.environment, chain[0].parents[0], chain, batch_size
        )
    if certify and rewrites:
        # imported lazily: the analyzer is pure stdlib + diagnostics, but
        # fusion must stay importable without the analysis package
        from repro.analysis.udfcheck import certify_chain

        for fused in rewrites.values():
            certify_chain(fused)
    return rewrites

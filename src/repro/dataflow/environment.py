"""Execution environment: owns parallelism, cost model, metrics and the
evaluator, including Flink-style bulk iterations.
"""

import contextlib
import threading

from .cost import ClusterCostModel
from .dataset import DataSet
from .errors import IterationError, PlanError
from .metrics import JobMetrics
from .operators import ExecutionContext, PartitionedSourceOperator, SourceOperator


class JobScope:
    """One logical job's execution services: metrics and cancellation.

    Scopes are installed per thread (see :meth:`ExecutionEnvironment.job`),
    so concurrent jobs sharing one environment each record into their own
    :class:`JobMetrics` instead of interleaving runs in the environment's
    default accumulator.
    """

    __slots__ = ("metrics", "cancellation")

    def __init__(self, metrics, cancellation=None):
        self.metrics = metrics
        self.cancellation = cancellation


class ExecutionEnvironment:
    """A simulated shared-nothing cluster running dataflow jobs.

    Args:
        parallelism: Number of simulated workers; if ``cost_model`` is given
            its ``workers`` field wins and this may be omitted.
        cost_model: :class:`~repro.dataflow.cost.ClusterCostModel` used for
            spill thresholds and simulated runtimes.
        batch_size: Chunk length of batched (fused) execution; partitions
            flow through fused operator chains in chunks of this many
            records with one cancellation poll per chunk.
        fusion: Default execution mode for :meth:`run` — when True,
            adjacent partition-local operators (map / filter / flat-map)
            are collapsed into compiled batched loops.  Per-call ``fused``
            arguments override it; shared-cache runs are always unfused.
        certify_fusion: When True, every fused chain is certified
            process-shippable (zero ``P4xx`` findings) at fusion compile
            time — :class:`~repro.analysis.udfcheck.ShippabilityError`
            rejects a chain capturing locks, open handles, shared mutable
            state or nondeterminism before it would ever reach a worker.
        workers: Number of **worker processes** (multi-process sharded
            execution, :mod:`repro.dataflow.workers`).  ``None`` (the
            default) keeps everything in-process.  Distinct from
            ``parallelism``: the simulated cluster still has
            ``parallelism`` partitions; each worker process *owns*
            ``parallelism / workers`` of them.  Certified-shippable
            fused chains and hash-join partition pairs execute inside
            the pool; everything else — and every uncertified chain or
            sanitized/shared-cache run — transparently stays
            in-process.  The pool starts lazily on the first fused run
            and is released by :meth:`shutdown_workers`.
    """

    def __init__(self, parallelism=None, cost_model=None, batch_size=None,
                 fusion=True, certify_fusion=False, workers=None,
                 columnar=False):
        if cost_model is None:
            cost_model = ClusterCostModel(workers=parallelism or 4)
        elif parallelism is not None and parallelism != cost_model.workers:
            cost_model = cost_model.with_workers(parallelism)
        if batch_size is None:
            from .fusion import DEFAULT_BATCH_SIZE

            batch_size = DEFAULT_BATCH_SIZE
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %r" % (batch_size,))
        self.cost_model = cost_model  # unsynchronized: immutable after init
        self.batch_size = batch_size  # unsynchronized: immutable after init
        self.fusion = bool(fusion)  # unsynchronized: immutable after init
        self.certify_fusion = bool(certify_fusion)  # unsynchronized: immutable
        # columnar is a sub-mode of fusion: chunk kernels only run inside
        # fused chains / fused-run shuffles, never per-record
        self.columnar = bool(columnar)  # unsynchronized: immutable after init
        # the shared default accumulator: concurrent service queries never
        # record here (each runs under a per-thread job scope); only
        # single-threaded callers and reset_metrics touch it
        self.metrics = JobMetrics()  # unsynchronized: job scopes bypass it
        self._scopes = threading.local()  # unsynchronized: thread-local
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.workers = workers  # unsynchronized: immutable after init
        from repro.locks import named_lock

        self._pool_lock = named_lock("workers.env")
        self._worker_pool = None  # guarded-by: _pool_lock

    @property
    def parallelism(self):
        return self.cost_model.workers

    # Worker processes -------------------------------------------------------

    def worker_pool(self):
        """The lazily created worker pool; ``None`` without ``workers=``."""
        if self.workers is None:
            return None
        with self._pool_lock:
            if self._worker_pool is None:
                from .workers import WorkerPool

                self._worker_pool = WorkerPool(self.workers)
            return self._worker_pool

    def shutdown_workers(self):
        """Stop the worker pool (if any was started); idempotent."""
        with self._pool_lock:
            pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            pool.shutdown()

    # Job scoping ------------------------------------------------------------

    def _active_scope(self):
        stack = getattr(self._scopes, "stack", None)
        return stack[-1] if stack else None

    @contextlib.contextmanager
    def job(self, name="job", cancellation=None):
        """Install a per-thread job scope; yields its :class:`JobMetrics`.

        Every :meth:`run` / iteration primitive on this thread records into
        the scope's own metrics (not the shared default) and polls the
        scope's cancellation token until the ``with`` block exits.  Scopes
        nest; the innermost wins.  Other threads are unaffected, which is
        what makes one environment safe to share between concurrent
        service queries.
        """
        scope = JobScope(JobMetrics(name), cancellation)
        stack = getattr(self._scopes, "stack", None)
        if stack is None:
            stack = []
            self._scopes.stack = stack
        stack.append(scope)
        try:
            yield scope.metrics
        finally:
            stack.pop()

    @property
    def current_metrics(self):
        """The active scope's metrics, or the shared default accumulator."""
        scope = self._active_scope()
        return scope.metrics if scope is not None else self.metrics

    @property
    def current_cancellation(self):
        scope = self._active_scope()
        return scope.cancellation if scope is not None else None

    # Sources ----------------------------------------------------------------

    def from_collection(self, items, name=None):
        """Create a dataset from an in-memory iterable."""
        return DataSet(self, SourceOperator(self, items, name))

    def from_partitions(self, partitions, name=None):
        """Create a dataset from pre-partitioned data (one list per worker)."""
        return DataSet(self, PartitionedSourceOperator(self, partitions, name))

    # Metrics ------------------------------------------------------------------

    def reset_metrics(self, job_name="job"):
        """Start a fresh metrics scope; returns the previous one."""
        previous = self.metrics
        self.metrics = JobMetrics(job_name)
        return previous

    def simulated_runtime_seconds(self, metrics=None):
        """Simulated wall-clock time of ``metrics`` (default: active scope,
        falling back to everything since the last reset)."""
        if metrics is None:
            metrics = self.current_metrics
        return self.cost_model.job_seconds(metrics)

    # Evaluation ----------------------------------------------------------------

    def run(self, operator, cache=None, metrics=None, cancellation=None,
            fused=None, columnar=None):
        """Evaluate the DAG rooted at ``operator``; returns partitions.

        ``cache`` (operator id → partitions) may be passed in and shared
        across several ``run`` calls to evaluate a DAG's common operators
        only once — EXPLAIN ANALYZE and the cardinality-estimate audit
        walk every plan node this way without quadratic recomputation.
        Shared-cache runs always execute per-record: fused chains would
        skip materializing their interior operators, breaking the
        per-node caching contract.

        ``fused`` overrides the environment's default ``fusion`` mode for
        this run, ``columnar`` the default ``columnar`` mode (a sub-mode:
        columnar execution requires a fused run).  ``metrics`` and
        ``cancellation`` default to the thread's active :meth:`job` scope,
        so callers deep inside operator builds need no extra plumbing to
        participate in per-query scoping and deadlines.
        """
        if metrics is None:
            metrics = self.current_metrics
        if cancellation is None:
            cancellation = self.current_cancellation
        if fused is None:
            fused = self.fusion
        fused = bool(fused) and cache is None
        if columnar is None:
            columnar = self.columnar
        columnar = bool(columnar) and fused
        # the worker pool only ever sees fused runs: per-record and
        # shared-cache execution (sanitized runs, EXPLAIN ANALYZE) stay
        # in-process by construction
        pool = self.worker_pool() if fused else None
        ctx = ExecutionContext(self, metrics, cancellation=cancellation,
                               fused=fused, pool=pool, columnar=columnar)
        return self._evaluate(operator, {} if cache is None else cache, ctx)

    def _evaluate(self, operator, cache, ctx):
        if operator.environment is not self:
            raise PlanError("operator belongs to a different environment")
        if operator.id in cache:
            return cache[operator.id]
        rewrites = None
        if getattr(ctx, "fused", False):
            from .fusion import plan_fusion

            rewrites = plan_fusion(
                operator, ctx.batch_size, materialized=cache,
                certify=self.certify_fusion,
            ) or None
            if rewrites is not None:
                operator = rewrites.get(operator.id, operator)
        # Iterative post-order walk: deep Cypher plans (long join chains,
        # many expansion supersteps) would overflow Python's recursion limit.
        stack = [(operator, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in cache:
                continue
            if expanded:
                # batch boundary: one poll per operator execution
                ctx.poll()
                if rewrites is None:
                    parent_results = [
                        cache[parent.id] for parent in node.parents
                    ]
                else:
                    parent_results = [
                        cache[rewrites.get(parent.id, parent).id]
                        for parent in node.parents
                    ]
                result = node.execute(ctx, parent_results)
                cache[node.id] = result
                # a fused chain stands in for its terminal stage: alias
                # the result so later walks sharing this cache (e.g. the
                # emit branch of a superstep) see the terminal as done
                terminal_id = getattr(node, "terminal_id", None)
                if terminal_id is not None:
                    cache[terminal_id] = result
            else:
                stack.append((node, True))
                for parent in node.parents:
                    if rewrites is not None:
                        parent = rewrites.get(parent.id, parent)
                    if parent.id not in cache:
                        stack.append((parent, False))
        return cache[operator.id]

    # Bulk iteration -------------------------------------------------------------

    def iterate(
        self,
        initial,
        step,
        max_iterations,
        collect_emissions=True,
        name=None,
    ):
        """A *lazy* bulk iteration: the superstep loop becomes a DAG node.

        Same contract as :meth:`bulk_iterate`, but nothing runs until the
        returned dataset is evaluated — and the loop re-runs on *every*
        evaluation, under the evaluating run's job scope.  This is what
        plan-reusing callers need (prepared statements re-execute one
        compiled plan with different parameter bindings; an eagerly
        materialized iteration would freeze the first binding's paths
        into the plan).
        """
        from .operators import BulkIterationOperator

        if max_iterations < 0:
            raise IterationError("max_iterations must be >= 0")
        return DataSet(
            self,
            BulkIterationOperator(
                self,
                initial.operator,
                step,
                max_iterations,
                collect_emissions=collect_emissions,
                name=name or "bulk-iteration",
            ),
        )

    def bulk_iterate(
        self,
        initial,
        step,
        max_iterations,
        collect_emissions=True,
        metrics_scope=None,
    ):
        """Run a Flink-style bulk iteration.

        Args:
            initial: DataSet seeding the working set.
            step: ``step(working: DataSet, iteration: int) ->
                (next_working: DataSet, emit: DataSet | None)``.  Called once
                per superstep with a dataset view of the current working set;
                it must build and return lazy datasets in this environment.
            max_iterations: Hard superstep bound (paper: the path upper
                bound).
            collect_emissions: When True the result is the union of all
                ``emit`` datasets; when False it is the final working set.

        Returns:
            A materialized :class:`DataSet`.

        The iteration terminates early once the working set is empty, like
        Flink's empty-workset convergence criterion.
        """
        if max_iterations < 0:
            raise IterationError("max_iterations must be >= 0")
        metrics = metrics_scope if metrics_scope is not None else self.current_metrics
        cancellation = self.current_cancellation
        outer_ctx = ExecutionContext(self, metrics, cancellation=cancellation)
        shared_cache = {}
        working = self._evaluate(initial.operator, shared_cache, outer_ctx)
        emitted = [[] for _ in range(self.parallelism)]

        for iteration in range(1, max_iterations + 1):
            if sum(len(p) for p in working) == 0:
                break
            ctx = ExecutionContext(
                self, metrics, iteration=iteration, cancellation=cancellation
            )
            working_ds = self.from_partitions(working, name="iteration-working-set")
            result = step(working_ds, iteration)
            if isinstance(result, tuple):
                next_working_ds, emit_ds = result
            else:
                next_working_ds, emit_ds = result, None
            if next_working_ds is None:
                raise IterationError("step returned no next working set")
            cache = dict(shared_cache)
            working = self._evaluate(next_working_ds.operator, cache, ctx)
            if emit_ds is not None and collect_emissions:
                emit_parts = self._evaluate(emit_ds.operator, cache, ctx)
                for worker, partition in enumerate(emit_parts):
                    emitted[worker].extend(partition)

        if collect_emissions:
            return self.from_partitions(emitted, name="iteration-result")
        return self.from_partitions(working, name="iteration-result")

    def delta_iterate(
        self,
        solution,
        key_fn,
        step,
        max_iterations,
        workset=None,
        metrics_scope=None,
    ):
        """Run a Flink-style delta iteration.

        The *solution set* is a keyed state (one record per key); the
        *workset* carries the records that changed last superstep.  Each
        superstep calls ``step(solution_ds, workset_ds, iteration)`` which
        must return a DataSet of **candidate solution records**; records
        whose key's stored value actually changes become the next workset,
        and the iteration converges when no record changes — Flink's
        delta-iteration contract, which lets algorithms like connected
        components touch only the moving frontier.

        Args:
            solution: DataSet seeding the solution set.
            key_fn: Extracts the solution key from a record.
            step: Callback building the candidate dataset (lazy).
            max_iterations: Superstep bound.
            workset: Optional initial workset DataSet (defaults to the
                full solution set).

        Returns:
            A materialized DataSet of the final solution records.
        """
        if max_iterations < 0:
            raise IterationError("max_iterations must be >= 0")
        metrics = metrics_scope if metrics_scope is not None else self.current_metrics
        cancellation = self.current_cancellation
        ctx = ExecutionContext(self, metrics, cancellation=cancellation)
        cache = {}
        solution_parts = self._evaluate(solution.operator, cache, ctx)
        state = {}
        for partition in solution_parts:
            for record in partition:
                state[key_fn(record)] = record
        if workset is None:
            working = [list(p) for p in solution_parts]
        else:
            working = self._evaluate(workset.operator, dict(cache), ctx)

        for iteration in range(1, max_iterations + 1):
            if sum(len(p) for p in working) == 0:
                break
            step_ctx = ExecutionContext(
                self, metrics, iteration=iteration, cancellation=cancellation
            )
            solution_ds = self.from_partitions(
                [list(p) for p in _partition_values(state, self.parallelism)],
                name="delta-solution",
            )
            workset_ds = self.from_partitions(working, name="delta-workset")
            candidates_ds = step(solution_ds, workset_ds, iteration)
            if candidates_ds is None:
                raise IterationError("step returned no candidate dataset")
            candidate_parts = self._evaluate(
                candidates_ds.operator, {}, step_ctx
            )
            changed = [[] for _ in range(self.parallelism)]
            for worker, partition in enumerate(candidate_parts):
                for record in partition:
                    key = key_fn(record)
                    if key not in state:
                        raise IterationError(
                            "delta iteration produced unknown key %r" % (key,)
                        )
                    if state[key] != record:
                        state[key] = record
                        changed[worker].append(record)
            working = changed

        return self.from_partitions(
            [list(p) for p in _partition_values(state, self.parallelism)],
            name="delta-result",
        )


def _partition_values(state, parallelism):
    """Deterministically spread the solution records over workers."""
    from .partitioner import partition_index

    partitions = [[] for _ in range(parallelism)]
    for key, record in state.items():
        partitions[partition_index(key, parallelism)].append(record)
    return partitions

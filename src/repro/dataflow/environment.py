"""Execution environment: owns parallelism, cost model, metrics and the
evaluator, including Flink-style bulk iterations.
"""

from .cost import ClusterCostModel
from .dataset import DataSet
from .errors import IterationError, PlanError
from .metrics import JobMetrics
from .operators import ExecutionContext, PartitionedSourceOperator, SourceOperator


class ExecutionEnvironment:
    """A simulated shared-nothing cluster running dataflow jobs.

    Args:
        parallelism: Number of simulated workers; if ``cost_model`` is given
            its ``workers`` field wins and this may be omitted.
        cost_model: :class:`~repro.dataflow.cost.ClusterCostModel` used for
            spill thresholds and simulated runtimes.
    """

    def __init__(self, parallelism=None, cost_model=None):
        if cost_model is None:
            cost_model = ClusterCostModel(workers=parallelism or 4)
        elif parallelism is not None and parallelism != cost_model.workers:
            cost_model = cost_model.with_workers(parallelism)
        self.cost_model = cost_model
        self.metrics = JobMetrics()

    @property
    def parallelism(self):
        return self.cost_model.workers

    # Sources ----------------------------------------------------------------

    def from_collection(self, items, name=None):
        """Create a dataset from an in-memory iterable."""
        return DataSet(self, SourceOperator(self, items, name))

    def from_partitions(self, partitions, name=None):
        """Create a dataset from pre-partitioned data (one list per worker)."""
        return DataSet(self, PartitionedSourceOperator(self, partitions, name))

    # Metrics ------------------------------------------------------------------

    def reset_metrics(self, job_name="job"):
        """Start a fresh metrics scope; returns the previous one."""
        previous = self.metrics
        self.metrics = JobMetrics(job_name)
        return previous

    def simulated_runtime_seconds(self):
        """Simulated wall-clock time of everything since the last reset."""
        return self.cost_model.job_seconds(self.metrics)

    # Evaluation ----------------------------------------------------------------

    def run(self, operator, cache=None):
        """Evaluate the DAG rooted at ``operator``; returns partitions.

        ``cache`` (operator id → partitions) may be passed in and shared
        across several ``run`` calls to evaluate a DAG's common operators
        only once — EXPLAIN ANALYZE and the cardinality-estimate audit
        walk every plan node this way without quadratic recomputation.
        """
        ctx = ExecutionContext(self, self.metrics)
        return self._evaluate(operator, {} if cache is None else cache, ctx)

    def _evaluate(self, operator, cache, ctx):
        if operator.environment is not self:
            raise PlanError("operator belongs to a different environment")
        if operator.id in cache:
            return cache[operator.id]
        # Iterative post-order walk: deep Cypher plans (long join chains,
        # many expansion supersteps) would overflow Python's recursion limit.
        stack = [(operator, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in cache:
                continue
            if expanded:
                parent_results = [cache[parent.id] for parent in node.parents]
                cache[node.id] = node.execute(ctx, parent_results)
            else:
                stack.append((node, True))
                for parent in node.parents:
                    if parent.id not in cache:
                        stack.append((parent, False))
        return cache[operator.id]

    # Bulk iteration -------------------------------------------------------------

    def bulk_iterate(
        self,
        initial,
        step,
        max_iterations,
        collect_emissions=True,
        metrics_scope=None,
    ):
        """Run a Flink-style bulk iteration.

        Args:
            initial: DataSet seeding the working set.
            step: ``step(working: DataSet, iteration: int) ->
                (next_working: DataSet, emit: DataSet | None)``.  Called once
                per superstep with a dataset view of the current working set;
                it must build and return lazy datasets in this environment.
            max_iterations: Hard superstep bound (paper: the path upper
                bound).
            collect_emissions: When True the result is the union of all
                ``emit`` datasets; when False it is the final working set.

        Returns:
            A materialized :class:`DataSet`.

        The iteration terminates early once the working set is empty, like
        Flink's empty-workset convergence criterion.
        """
        if max_iterations < 0:
            raise IterationError("max_iterations must be >= 0")
        metrics = metrics_scope if metrics_scope is not None else self.metrics
        outer_ctx = ExecutionContext(self, metrics)
        shared_cache = {}
        working = self._evaluate(initial.operator, shared_cache, outer_ctx)
        emitted = [[] for _ in range(self.parallelism)]

        for iteration in range(1, max_iterations + 1):
            if sum(len(p) for p in working) == 0:
                break
            ctx = ExecutionContext(self, metrics, iteration=iteration)
            working_ds = self.from_partitions(working, name="iteration-working-set")
            result = step(working_ds, iteration)
            if isinstance(result, tuple):
                next_working_ds, emit_ds = result
            else:
                next_working_ds, emit_ds = result, None
            if next_working_ds is None:
                raise IterationError("step returned no next working set")
            cache = dict(shared_cache)
            working = self._evaluate(next_working_ds.operator, cache, ctx)
            if emit_ds is not None and collect_emissions:
                emit_parts = self._evaluate(emit_ds.operator, cache, ctx)
                for worker, partition in enumerate(emit_parts):
                    emitted[worker].extend(partition)

        if collect_emissions:
            return self.from_partitions(emitted, name="iteration-result")
        return self.from_partitions(working, name="iteration-result")

    def delta_iterate(
        self,
        solution,
        key_fn,
        step,
        max_iterations,
        workset=None,
        metrics_scope=None,
    ):
        """Run a Flink-style delta iteration.

        The *solution set* is a keyed state (one record per key); the
        *workset* carries the records that changed last superstep.  Each
        superstep calls ``step(solution_ds, workset_ds, iteration)`` which
        must return a DataSet of **candidate solution records**; records
        whose key's stored value actually changes become the next workset,
        and the iteration converges when no record changes — Flink's
        delta-iteration contract, which lets algorithms like connected
        components touch only the moving frontier.

        Args:
            solution: DataSet seeding the solution set.
            key_fn: Extracts the solution key from a record.
            step: Callback building the candidate dataset (lazy).
            max_iterations: Superstep bound.
            workset: Optional initial workset DataSet (defaults to the
                full solution set).

        Returns:
            A materialized DataSet of the final solution records.
        """
        if max_iterations < 0:
            raise IterationError("max_iterations must be >= 0")
        metrics = metrics_scope if metrics_scope is not None else self.metrics
        ctx = ExecutionContext(self, metrics)
        cache = {}
        solution_parts = self._evaluate(solution.operator, cache, ctx)
        state = {}
        for partition in solution_parts:
            for record in partition:
                state[key_fn(record)] = record
        if workset is None:
            working = [list(p) for p in solution_parts]
        else:
            working = self._evaluate(workset.operator, dict(cache), ctx)

        for iteration in range(1, max_iterations + 1):
            if sum(len(p) for p in working) == 0:
                break
            step_ctx = ExecutionContext(self, metrics, iteration=iteration)
            solution_ds = self.from_partitions(
                [list(p) for p in _partition_values(state, self.parallelism)],
                name="delta-solution",
            )
            workset_ds = self.from_partitions(working, name="delta-workset")
            candidates_ds = step(solution_ds, workset_ds, iteration)
            if candidates_ds is None:
                raise IterationError("step returned no candidate dataset")
            candidate_parts = self._evaluate(
                candidates_ds.operator, {}, step_ctx
            )
            changed = [[] for _ in range(self.parallelism)]
            for worker, partition in enumerate(candidate_parts):
                for record in partition:
                    key = key_fn(record)
                    if key not in state:
                        raise IterationError(
                            "delta iteration produced unknown key %r" % (key,)
                        )
                    if state[key] != record:
                        state[key] = record
                        changed[worker].append(record)
            working = changed

        return self.from_partitions(
            [list(p) for p in _partition_values(state, self.parallelism)],
            name="delta-result",
        )


def _partition_values(state, parallelism):
    """Deterministically spread the solution records over workers."""
    from .partitioner import partition_index

    partitions = [[] for _ in range(parallelism)]
    for key, record in state.items():
        partitions[partition_index(key, parallelism)].append(record)
    return partitions

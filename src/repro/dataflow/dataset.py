"""The lazy :class:`DataSet` API.

Mirrors Apache Flink's DataSet API: transformations build an operator DAG;
nothing runs until an action (:meth:`DataSet.collect`, :meth:`DataSet.count`)
is triggered through the owning :class:`~repro.dataflow.environment.ExecutionEnvironment`.
"""

from .errors import PlanError
from .operators import (
    CrossOperator,
    DistinctOperator,
    FilterOperator,
    FlatMapOperator,
    GroupReduceOperator,
    JoinOperator,
    JoinStrategy,
    MapOperator,
    MapPartitionOperator,
    PartitionByOperator,
    RebalanceOperator,
    UnionOperator,
)


class DataSet:
    """A distributed collection of records (lazy DAG node)."""

    def __init__(self, environment, operator):
        self.environment = environment
        self.operator = operator

    # Transformations ------------------------------------------------------

    def _derive(self, operator):
        return DataSet(self.environment, operator)

    def _check_same_env(self, other):
        if other.environment is not self.environment:
            raise PlanError("cannot combine datasets from different environments")

    def map(self, fn, name=None):
        """Apply ``fn`` to every record."""
        return self._derive(MapOperator(self.environment, self.operator, fn, name))

    def flat_map(self, fn, name=None):
        """Apply ``fn`` returning zero or more records per input."""
        return self._derive(FlatMapOperator(self.environment, self.operator, fn, name))

    def filter(self, predicate, name=None):
        """Keep records for which ``predicate`` is true."""
        return self._derive(
            FilterOperator(self.environment, self.operator, predicate, name)
        )

    def map_partition(self, fn, name=None):
        """Apply ``fn(iterator) -> iterable`` once per partition."""
        return self._derive(
            MapPartitionOperator(self.environment, self.operator, fn, name)
        )

    def union(self, other, name=None):
        """Bag union with another dataset (no deduplication)."""
        self._check_same_env(other)
        return self._derive(
            UnionOperator(self.environment, self.operator, other.operator, name)
        )

    def distinct(self, key=None, name=None):
        """Deduplicate records by ``key`` (whole record if ``None``)."""
        return self._derive(DistinctOperator(self.environment, self.operator, key, name))

    def rebalance(self, name=None):
        """Redistribute records round-robin to even out partitions."""
        return self._derive(RebalanceOperator(self.environment, self.operator, name))

    def partition_by(self, key, name=None):
        """Hash-partition records by ``key``."""
        return self._derive(
            PartitionByOperator(self.environment, self.operator, key, name)
        )

    def group_by(self, key):
        """Group records by key; follow with :meth:`GroupedDataSet.reduce_group`."""
        return GroupedDataSet(self, key)

    def join(
        self,
        other,
        left_key,
        right_key,
        join_fn=None,
        strategy=JoinStrategy.AUTO,
        name=None,
    ):
        """Equi-join with FlatJoin semantics.

        ``join_fn(left, right)`` returns an iterable of outputs; omitting it
        yields ``(left, right)`` pairs.
        """
        self._check_same_env(other)
        return self._derive(
            JoinOperator(
                self.environment,
                self.operator,
                other.operator,
                left_key,
                right_key,
                join_fn,
                strategy,
                name,
            )
        )

    def cross(self, other, fn=None, name=None):
        """Cartesian product with ``other`` (right side broadcast)."""
        self._check_same_env(other)
        return self._derive(
            CrossOperator(self.environment, self.operator, other.operator, fn, name)
        )

    # Actions ---------------------------------------------------------------

    def collect(self, fused=None, columnar=None):
        """Execute the DAG and return all records as a list.

        ``fused`` overrides the environment's default batched-fusion mode
        for this execution, ``columnar`` its chunk-kernel sub-mode
        (``None`` inherits them).
        """
        partitions = self.environment.run(
            self.operator, fused=fused, columnar=columnar
        )
        return [record for partition in partitions for record in partition]

    def collect_partitions(self, fused=None, columnar=None):
        """Execute the DAG and return records per worker."""
        return self.environment.run(
            self.operator, fused=fused, columnar=columnar
        )

    def count(self, fused=None, columnar=None):
        """Execute the DAG and return the number of records."""
        return sum(
            len(p)
            for p in self.environment.run(
                self.operator, fused=fused, columnar=columnar
            )
        )

    def first(self, n, fused=None, columnar=None):
        """Execute and return up to ``n`` records (deterministic order)."""
        if n < 0:
            raise ValueError("n must be non-negative, got %d" % n)
        return self.collect(fused=fused, columnar=columnar)[:n]


class GroupedDataSet:
    """Intermediate handle produced by :meth:`DataSet.group_by`."""

    def __init__(self, dataset, key_fn):
        self._dataset = dataset
        self._key_fn = key_fn

    def reduce_group(self, reduce_fn, name=None):
        """Apply ``reduce_fn(key, records) -> iterable`` per group."""
        env = self._dataset.environment
        return DataSet(
            env,
            GroupReduceOperator(
                env, self._dataset.operator, self._key_fn, reduce_fn, name
            ),
        )

    def count_per_group(self, name=None):
        """Convenience: dataset of ``(key, count)`` tuples."""
        return self.reduce_group(
            lambda key, records: [(key, len(records))], name or "count-per-group"
        )

"""Deterministic partitioning utilities.

Python's built-in ``hash`` is salted per process for strings, which would
make shuffle placement — and therefore skew and the simulated runtimes —
non-reproducible.  All key hashing in the dataflow layer goes through
:func:`stable_hash` instead.
"""

import zlib
from typing import Any, Iterable, List

_MASK = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """Finalizer of the splitmix64 generator: avalanche all 64 bits.

    Plain multiplicative hashing leaves the low bits of the product a
    function of only the low bits of the key, so sequential ids would all
    keep their source partition and no shuffle would ever be simulated.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


def stable_hash(key: Any) -> int:
    """A process-independent 64-bit hash for common key types.

    Supports ints, strings, bytes, bools, None, floats and (nested) tuples
    of those.  Unknown types fall back to hashing their ``repr``, which is
    deterministic for the value types used in this project.
    """
    if key is None:
        return 0x5CA1AB1E
    if isinstance(key, bool):
        return 0xB001 if key else 0xB000
    if isinstance(key, int):
        return _splitmix64(key & _MASK)
    if isinstance(key, float):
        return stable_hash(key.hex())
    if isinstance(key, str):
        return _splitmix64(zlib.crc32(key.encode("utf-8")))
    if isinstance(key, (bytes, bytearray)):
        return _splitmix64(zlib.crc32(bytes(key)))
    if isinstance(key, tuple):
        acc = 0x345678
        for part in key:
            acc = _splitmix64(acc ^ stable_hash(part))
        return acc
    hasher = getattr(key, "stable_hash", None)
    if hasher is not None:
        return hasher() & _MASK
    return _splitmix64(zlib.crc32(repr(key).encode("utf-8")))


def partition_index(key: Any, parallelism: int) -> int:
    """Worker index a record with ``key`` is routed to."""
    return stable_hash(key) % parallelism


def assign_partitions(partitions: int, workers: int) -> List[int]:
    """Static partition → worker-process placement (round-robin).

    The multi-process runtime's "execution graph": every task for
    partition ``p`` runs on the worker process owning ``p``, so a
    worker's resident caches keep hitting across queries.  Round-robin
    keeps ownership balanced for any ``partitions``/``workers`` ratio.
    """
    if workers <= 0:
        raise ValueError("workers must be positive, got %d" % workers)
    return [index % workers for index in range(partitions)]


def round_robin_partitions(items: Iterable[Any], parallelism: int) -> List[List[Any]]:
    """Split ``items`` into ``parallelism`` balanced partitions.

    Mirrors how a distributed source splits its input blocks: order within
    a partition is preserved, sizes differ by at most one.
    """
    if parallelism <= 0:
        raise ValueError("parallelism must be positive, got %d" % parallelism)
    partitions: List[List[Any]] = [[] for _ in range(parallelism)]
    for index, item in enumerate(items):
        partitions[index % parallelism].append(item)
    return partitions

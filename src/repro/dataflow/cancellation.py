"""Cooperative query cancellation and deadlines.

A :class:`CancellationToken` is handed to a dataflow run (usually through
the environment's per-job scope, see
:meth:`~repro.dataflow.environment.ExecutionEnvironment.job`).  Operators
poll it at *batch boundaries* — once per operator execution, once per
partition in shuffling operators, and every :data:`POLL_INTERVAL` records
inside the long inner loops of joins, expansions and flat-maps — so a
deadline or an explicit :meth:`CancellationToken.cancel` interrupts even a
single long-running join instead of waiting for the whole plan to finish.

Polling is free when no token is installed: call sites keep the token in a
local and skip the check entirely when it is ``None``.
"""

import time

#: Records processed between two polls inside a tight operator loop.  A
#: power of two so the call sites can use ``index & (POLL_INTERVAL - 1)``.
POLL_INTERVAL = 4096


class QueryCancelled(RuntimeError):
    """The run was cancelled before it finished."""

    #: tells Operator._call not to wrap this into a JobExecutionError —
    #: cancellation names its own context and must reach the submitter
    propagate_unwrapped = True


class QueryTimeout(QueryCancelled):
    """The run exceeded its deadline."""


class CancellationToken:
    """Shared flag + optional monotonic deadline polled by operators."""

    __slots__ = ("deadline", "_cancelled", "_reason")

    def __init__(self, deadline=None):
        #: absolute :func:`time.monotonic` timestamp, or ``None``
        self.deadline = deadline  # unsynchronized: immutable after construction
        # deliberately lock-free: polled at POLL_INTERVAL record boundaries
        # on the hot path.  _cancelled only ever goes False -> True, and
        # cancel() stores _reason *before* flipping it, so a poll that
        # observes the flag also observes its reason (GIL store ordering).
        self._cancelled = False  # unsynchronized: monotone flag, see above
        self._reason = None  # unsynchronized: written before _cancelled flips

    @classmethod
    def with_timeout(cls, seconds):
        """A token that expires ``seconds`` from now (``None`` = never)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self, reason="cancelled"):
        """Request cancellation; the next poll raises :class:`QueryCancelled`."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled

    def expired(self):
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining(self):
        """Seconds until the deadline (``None`` when there is none)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def poll(self):
        """Raise :class:`QueryCancelled`/:class:`QueryTimeout` when due."""
        if self._cancelled:
            raise QueryCancelled(self._reason or "cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._cancelled = True
            self._reason = "deadline exceeded"
            raise QueryTimeout("query exceeded its deadline")

"""repro — Cypher-based graph pattern matching on a simulated distributed
dataflow engine.

A from-scratch Python reproduction of *Cypher-based Graph Pattern Matching
in Gradoop* (Junghanns et al., GRADES'17).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.

Convenience imports for the common workflow::

    from repro import ExecutionEnvironment, LogicalGraph, CypherRunner

    env = ExecutionEnvironment(parallelism=4)
    graph = LogicalGraph.from_collections(env, vertices, edges)
    matches = graph.cypher("MATCH (a:Person)-[:knows]->(b) RETURN *")
"""

from repro.dataflow import ClusterCostModel, ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics, MatchStrategy
from repro.epgm import (
    Edge,
    GradoopId,
    GraphCollection,
    IndexedLogicalGraph,
    LogicalGraph,
    PropertyValue,
    Vertex,
)

__version__ = "0.1.0"

__all__ = [
    "ClusterCostModel",
    "CypherRunner",
    "Edge",
    "ExecutionEnvironment",
    "GradoopId",
    "GraphCollection",
    "GraphStatistics",
    "IndexedLogicalGraph",
    "LogicalGraph",
    "MatchStrategy",
    "PropertyValue",
    "Vertex",
    "__version__",
]

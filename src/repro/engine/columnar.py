"""Columnar embedding chunks: batch execution over the §3.3 layout.

A :class:`EmbeddingChunk` stores a batch of embeddings column-wise instead
of row-wise: the fixed-width id entries of all rows live in two flat
tuples (``flags``, ``values``), while the variable-width ``path_data`` /
``prop_data`` payloads are concatenated into single buffers with per-row
offset tables.  Because every §3.3 id entry is exactly
``ENTRY_WIDTH`` bytes, the whole id column block decodes with **one**
``struct.unpack`` and a column projects as a tuple slice
(``values[c::columns]``) — no per-record dispatch, no per-record
``Embedding`` allocation.

The codec is exact and bidirectional: ``chunk_from_embeddings``
followed by ``to_embeddings`` reproduces every record byte-for-byte.
PATH entry values stay *row-relative* (offsets into the row's own
``path_data`` slice), so concatenating rows into a chunk — and slicing
them back out — never rewrites offsets.

Operators gain *columnar kernels* built here and attached as plain
attributes (``columnar_kernel`` / ``columnar_leaf`` / ``columnar_join`` /
``columnar_shuffle``) on the per-record closures the engine already hands
to the dataflow layer.  The dataflow layer discovers them with
``getattr`` — it never imports this module at module scope — and falls
back to the per-record closures whenever a kernel is missing, the input
is not columnar, or the run is sanitized (sanitized runs are per-record
by construction, so the sanitizer always validates the decoded view).

The per-row property *span tables* (:meth:`EmbeddingChunk.prop_spans`)
are the precomputed offset tables that replace the per-call length-field
walks of the per-record accessors on hot paths;
:func:`repro.engine.embedding.iter_property_records` remains the public
walk for the sanitizer and tests.
"""

import struct
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.epgm import GradoopId, PropertyValue
from repro.epgm.property_value import NULL_VALUE
from repro.locks import named_lock

from .embedding import (
    ENTRY_WIDTH,
    FLAG_ID,
    PROP_LEN_WIDTH,
    ElementBindings,
    Embedding,
    _ENTRY,
    _PROP_LEN,
)
from .morphism import MatchStrategy

try:  # vectorized shuffle hashing; the pure-Python loops below are the
    # always-available fallback (the module must import without numpy)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

_MASK = (1 << 64) - 1

# Compiled struct formats are keyed by entry count, which varies with every
# tail-chunk length — the cache is bounded so pathological batch sizes
# cannot grow it without limit.  Leaf lock role (see docs/architecture.md,
# "Lock hierarchy"): nothing is acquired while it is held.
_struct_lock = named_lock("engine.columnar")
_STRUCT_CACHE_LIMIT = 256
_entry_structs: Dict[int, struct.Struct] = {}  # guarded-by: _struct_lock
_offset_structs: Dict[int, struct.Struct] = {}  # guarded-by: _struct_lock


def entry_struct(n: int) -> struct.Struct:
    """The big-endian struct of ``n`` consecutive §3.3 id entries."""
    with _struct_lock:
        compiled = _entry_structs.get(n)
    if compiled is None:
        compiled = struct.Struct(">" + "BQ" * n)
        with _struct_lock:
            if len(_entry_structs) < _STRUCT_CACHE_LIMIT:
                _entry_structs[n] = compiled
    return compiled


def offset_struct(n: int) -> struct.Struct:
    """The little-endian struct of an ``n``-entry offset table (wire frames)."""
    with _struct_lock:
        compiled = _offset_structs.get(n)
    if compiled is None:
        compiled = struct.Struct("<%dI" % n)
        with _struct_lock:
            if len(_offset_structs) < _STRUCT_CACHE_LIMIT:
                _offset_structs[n] = compiled
    return compiled


class EmbeddingChunk:
    """A batch of same-shape embeddings in columnar form.

    ``flags`` and ``values`` are row-major flat tuples of length
    ``count * columns``; row ``r``'s ``path_data`` is
    ``path_buf[path_offsets[r]:path_offsets[r + 1]]`` (``prop_data``
    likewise).  Instances are immutable once built and may be shared
    between partitions (broadcast) without copying.
    """

    __slots__ = (
        "count",
        "columns",
        "flags",
        "values",
        "path_buf",
        "path_offsets",
        "prop_buf",
        "prop_offsets",
        "_id_buf",
        "_prop_spans",
    )

    def __init__(
        self,
        count: int,
        columns: int,
        flags: Tuple[int, ...],
        values: Tuple[int, ...],
        path_buf: bytes,
        path_offsets: Tuple[int, ...],
        prop_buf: bytes,
        prop_offsets: Tuple[int, ...],
        id_buf: Optional[bytes] = None,
    ) -> None:
        self.count = count
        self.columns = columns
        self.flags = flags
        self.values = values
        self.path_buf = path_buf
        self.path_offsets = path_offsets
        self.prop_buf = prop_buf
        self.prop_offsets = prop_offsets
        self._id_buf = id_buf
        self._prop_spans: Optional[Tuple[Tuple[Tuple[int, int], ...], ...]] = None

    def id_buf(self) -> bytes:
        """The canonical §3.3 id bytes of all rows, concatenated."""
        buf = self._id_buf
        if buf is None:
            n = self.count * self.columns
            flat: List[int] = [0] * (2 * n)
            flat[0::2] = self.flags
            flat[1::2] = self.values
            buf = entry_struct(n).pack(*flat)
            self._id_buf = buf
        return buf

    def byte_size(self) -> int:
        """Total serialized size — equals the sum of per-row sizes."""
        return (
            self.count * self.columns * ENTRY_WIDTH
            + len(self.path_buf)
            + len(self.prop_buf)
        )

    def prop_spans(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-row tuples of absolute ``(start, end)`` property-record spans.

        Built once per chunk by walking the length fields a single time;
        every columnar property access afterwards is a table lookup plus a
        buffer slice (the payload of record ``(s, e)`` is
        ``prop_buf[s + PROP_LEN_WIDTH:e]``).
        """
        table = self._prop_spans
        if table is None:
            buf = self.prop_buf
            unpack_from = _PROP_LEN.unpack_from
            offsets = self.prop_offsets
            rows: List[Tuple[Tuple[int, int], ...]] = []
            for row in range(self.count):
                cursor = offsets[row]
                end = offsets[row + 1]
                spans: List[Tuple[int, int]] = []
                while cursor < end:
                    nxt = cursor + PROP_LEN_WIDTH + unpack_from(buf, cursor)[0]
                    spans.append((cursor, nxt))
                    cursor = nxt
                rows.append(tuple(spans))
            table = tuple(rows)
            self._prop_spans = table
        return table

    def to_embeddings(self) -> List[Embedding]:
        """Decode every row back to the exact per-record §3.3 layout."""
        id_buf = self.id_buf()
        width = self.columns * ENTRY_WIDTH
        path_buf = self.path_buf
        prop_buf = self.prop_buf
        path_offsets = self.path_offsets
        prop_offsets = self.prop_offsets
        out = []
        append = out.append
        for row in range(self.count):
            append(
                Embedding(
                    id_buf[row * width:(row + 1) * width],
                    path_buf[path_offsets[row]:path_offsets[row + 1]],
                    prop_buf[prop_offsets[row]:prop_offsets[row + 1]],
                )
            )
        return out

    def gather(self, rows: Sequence[int]) -> "EmbeddingChunk":
        """A new chunk holding ``rows`` (in the given order).

        Row-relative path offsets make this pure slicing — no entry is
        unpacked or rewritten.
        """
        columns = self.columns
        flags = self.flags
        values = self.values
        if columns == 1:
            new_flags = tuple(flags[row] for row in rows)
            new_values = tuple(values[row] for row in rows)
        else:
            if self.path_buf:
                gathered_flags: List[int] = []
                extend_flags = gathered_flags.extend
                for row in rows:
                    base = row * columns
                    extend_flags(flags[base:base + columns])
                new_flags = tuple(gathered_flags)
            else:
                # no paths ⇒ every entry is a plain id
                new_flags = (FLAG_ID,) * (len(rows) * columns)
            gathered: List[int] = []
            extend = gathered.extend
            for row in rows:
                base = row * columns
                extend(values[base:base + columns])
            new_values = tuple(gathered)
        path_buf, path_offsets = _gather_buffer(
            self.path_buf, self.path_offsets, rows
        )
        prop_buf, prop_offsets = _gather_buffer(
            self.prop_buf, self.prop_offsets, rows
        )
        return EmbeddingChunk(
            len(rows),
            columns,
            new_flags,
            new_values,
            path_buf,
            path_offsets,
            prop_buf,
            prop_offsets,
        )

    def __repr__(self) -> str:
        return "EmbeddingChunk(%d rows x %d columns)" % (self.count, self.columns)


def _gather_buffer(
    buf: bytes, offsets: Tuple[int, ...], rows: Sequence[int]
) -> Tuple[bytes, Tuple[int, ...]]:
    if not buf:
        return b"", (0,) * (len(rows) + 1)
    parts = []
    new_offsets = [0]
    total = 0
    for row in rows:
        start = offsets[row]
        end = offsets[row + 1]
        if end > start:
            parts.append(buf[start:end])
            total += end - start
        new_offsets.append(total)
    return b"".join(parts), tuple(new_offsets)


def chunk_from_embeddings(records: Sequence[Any]) -> Optional[EmbeddingChunk]:
    """Encode a batch of embeddings; ``None`` if the batch is not uniform.

    Uniform means: non-empty, every record an :class:`Embedding`, every
    record with the same column count.  Mixed batches (or batches of
    non-embedding records, e.g. expansion frontier tuples) return ``None``
    and the caller stays on the per-record path.
    """
    count = len(records)
    if count == 0:
        return None
    first = records[0]
    if type(first) is not Embedding:
        return None
    width = len(first.id_data)
    columns, remainder = divmod(width, ENTRY_WIDTH)
    if remainder:
        return None
    id_parts = []
    path_parts = []
    prop_parts = []
    path_offsets = [0]
    prop_offsets = [0]
    path_total = 0
    prop_total = 0
    for record in records:
        if type(record) is not Embedding or len(record.id_data) != width:
            return None
        id_parts.append(record.id_data)
        path_parts.append(record.path_data)
        path_total += len(record.path_data)
        path_offsets.append(path_total)
        prop_parts.append(record.prop_data)
        prop_total += len(record.prop_data)
        prop_offsets.append(prop_total)
    id_buf = b"".join(id_parts)
    flat = entry_struct(count * columns).unpack(id_buf)
    return EmbeddingChunk(
        count,
        columns,
        flat[0::2],
        flat[1::2],
        b"".join(path_parts),
        tuple(path_offsets),
        b"".join(prop_parts),
        tuple(prop_offsets),
        id_buf=id_buf,
    )


class ColumnarPartition:
    """A partition stored as a list of chunks, decoding lazily.

    Quacks like the list of embeddings it encodes: ``len``, iteration,
    indexing and slicing all work (decoding at most once, cached), so
    every operator without a columnar kernel — and every consumer like
    ``DataSet.collect`` — reads it transparently.  The dataflow layer
    recognizes columnar partitions by their ``chunks`` attribute.
    """

    __slots__ = ("chunks", "_rows")

    def __init__(self, chunks: Sequence[EmbeddingChunk]) -> None:
        self.chunks = list(chunks)
        self._rows: Optional[List[Embedding]] = None

    def rows(self) -> List[Embedding]:
        rows = self._rows
        if rows is None:
            rows = []
            for chunk in self.chunks:
                rows.extend(chunk.to_embeddings())
            self._rows = rows
        return rows

    def byte_size(self) -> int:
        return sum(chunk.byte_size() for chunk in self.chunks)

    def __len__(self) -> int:
        return sum(chunk.count for chunk in self.chunks)

    def __iter__(self) -> Iterator[Embedding]:
        return iter(self.rows())

    def __getitem__(self, item: Any) -> Any:
        return self.rows()[item]

    def __repr__(self) -> str:
        return "ColumnarPartition(%d chunks, %d rows)" % (
            len(self.chunks),
            len(self),
        )


# Kernels ---------------------------------------------------------------------
#
# A *chunk kernel* is ``EmbeddingChunk -> EmbeddingChunk``; a *leaf kernel*
# is ``list[element] -> EmbeddingChunk``.  All kernels are semantically
# identical to the per-record closures they shadow — the decoded output of
# the kernel equals the per-record outputs byte-for-byte, in the same
# order — which the columnar-vs-per-record differential suite pins.


class ChunkRowBindings:
    """CNF bindings over one chunk row (no Embedding materialization).

    Property reads go through the chunk's precomputed span table instead
    of a per-call length-field walk.
    """

    __slots__ = ("chunk", "row", "_prop_indexes", "_id_columns", "_spans")

    def __init__(self, chunk, row, prop_indexes, id_columns, spans):
        self.chunk = chunk
        self.row = row
        self._prop_indexes = prop_indexes
        self._id_columns = id_columns
        self._spans = spans

    def property_value(self, variable, key):
        index = self._prop_indexes.get((variable, key))
        if index is None:
            return NULL_VALUE
        start, end = self._spans[index]
        buf = self.chunk.prop_buf
        return PropertyValue.from_bytes(buf[start + PROP_LEN_WIDTH:end])[0]

    def label(self, variable):
        raise KeyError(
            "label of %r is not available after the leaf operators" % variable
        )

    def element_id(self, variable):
        column = self._id_columns.get(variable)
        if column is None:
            raise KeyError("variable %r not in embedding" % variable)
        chunk = self.chunk
        return GradoopId(chunk.values[self.row * chunk.columns + column])


def select_kernel(evaluate, meta):
    """Chunk kernel of ``SelectEmbeddings``: keep rows satisfying the CNF."""
    prop_indexes = {
        pair: index for index, pair in enumerate(meta.property_entries())
    }
    id_columns = {
        variable: meta.entry_column(variable)
        for variable in meta.variables
        if meta.entry_kind(variable) != "p"
    }

    def kernel(chunk):
        spans = chunk.prop_spans()
        kept = [
            row
            for row in range(chunk.count)
            if evaluate(
                ChunkRowBindings(chunk, row, prop_indexes, id_columns, spans[row])
            )
        ]
        if len(kept) == chunk.count:
            return chunk
        return chunk.gather(kept)

    return kernel


def project_kernel(keep_indices):
    """Chunk kernel of ``ProjectEmbeddings``: slice kept property records."""
    keep = tuple(keep_indices)

    def kernel(chunk):
        span_table = chunk.prop_spans()
        buf = chunk.prop_buf
        parts = []
        offsets = [0]
        total = 0
        for row in range(chunk.count):
            spans = span_table[row]
            for index in keep:
                start, end = spans[index]
                parts.append(buf[start:end])
                total += end - start
            offsets.append(total)
        return EmbeddingChunk(
            chunk.count,
            chunk.columns,
            chunk.flags,
            chunk.values,
            chunk.path_buf,
            chunk.path_offsets,
            b"".join(parts),
            tuple(offsets),
            id_buf=chunk._id_buf,
        )

    return kernel


def _encode_properties(element, keys, parts):
    """Append ``element``'s property records for ``keys``; returns byte count."""
    total = 0
    for key in keys:
        value = element.get_property(key)
        if not isinstance(value, PropertyValue):
            value = PropertyValue(value)
        payload = value.to_bytes()
        parts.append(_PROP_LEN.pack(len(payload)))
        parts.append(payload)
        total += PROP_LEN_WIDTH + len(payload)
    return total


def leaf_vertex_kernel(variable, keep, keys):
    """Leaf kernel of ``SelectAndProjectVertices``: elements → one chunk.

    The per-element CNF (including the label-equality fast path, which
    needs the element at hand) still runs per vertex, but surviving rows
    are written straight into column buffers — no intermediate
    ``Embedding`` objects, no per-record ``struct.pack``.
    """
    keys = tuple(keys)

    def kernel(elements):
        values = []
        append_value = values.append
        prop_parts: List[bytes] = []
        prop_offsets = [0]
        total = 0
        for vertex in elements:
            if not keep(ElementBindings(variable, vertex)):
                continue
            append_value(vertex.id.value)
            if keys:
                total += _encode_properties(vertex, keys, prop_parts)
            prop_offsets.append(total)
        count = len(values)
        return EmbeddingChunk(
            count,
            1,
            (FLAG_ID,) * count,
            tuple(values),
            b"",
            (0,) * (count + 1),
            b"".join(prop_parts),
            tuple(prop_offsets),
        )

    return kernel


def leaf_edge_kernel(variable, keep, keys, is_loop, undirected, distinct_endpoints):
    """Leaf kernel of ``SelectAndProjectEdges``: elements → one chunk."""
    keys = tuple(keys)
    columns = 2 if is_loop else 3

    def kernel(elements):
        values: List[int] = []
        extend_values = values.extend
        prop_parts: List[bytes] = []
        prop_offsets = [0]
        total = 0
        count = 0
        for edge in elements:
            if not keep(ElementBindings(variable, edge)):
                continue
            source = edge.source_id.value
            target = edge.target_id.value
            if distinct_endpoints and source == target:
                continue
            if is_loop:
                if source != target:
                    continue
                orientations = ((source, edge.id.value),)
            elif undirected and source != target:
                orientations = (
                    (source, edge.id.value, target),
                    (target, edge.id.value, source),
                )
            else:
                orientations = ((source, edge.id.value, target),)
            for ids in orientations:
                extend_values(ids)
                count += 1
                if keys:
                    total += _encode_properties(edge, keys, prop_parts)
                prop_offsets.append(total)
        return EmbeddingChunk(
            count,
            columns,
            (FLAG_ID,) * (count * columns),
            tuple(values),
            b"",
            (0,) * (count + 1),
            b"".join(prop_parts),
            tuple(prop_offsets),
        )

    return kernel


# Shuffle ---------------------------------------------------------------------


#: below this row count the fixed numpy conversion overhead outweighs the
#: vectorization win and the pure-Python loops run instead
_VECTOR_MIN_ROWS = 32


def _splitmix64_np(z):
    """Vectorized splitmix64 finalizer over a uint64 array (wrapping)."""
    z = z + _np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return z ^ (z >> _np.uint64(31))


def _shuffle_targets(chunk, key_columns, single, parallelism):
    """Per-row target workers of one chunk, as a uint64 numpy array.

    Vectorizes the exact arithmetic of
    :func:`repro.dataflow.partitioner.stable_hash` — int keys through the
    splitmix64 finalizer, tuple keys through the chained accumulator — so
    the placement matches the per-record shuffle bit for bit.
    """
    columns = chunk.columns
    arr = _np.array(chunk.values, dtype=_np.uint64)
    if single is not None:
        keys = arr[single::columns] if columns > 1 else arr
        hashed = _splitmix64_np(keys)
    else:
        hashed = _np.full(chunk.count, 0x345678, dtype=_np.uint64)
        for column in key_columns:
            part = arr[column::columns] if columns > 1 else arr
            hashed = _splitmix64_np(hashed ^ _splitmix64_np(part))
    return hashed % _np.uint64(parallelism)


def shuffle_split(chunks, key_columns, parallelism, source):
    """Split one partition's chunks by join-key hash, without decoding.

    Returns ``(splits, moved_records, moved_bytes, bytes_in)``:
    ``splits[target]`` is the list of chunks routed to ``target`` (rows
    in input order, gathered by slicing).  The splitmix64 avalanche of
    :func:`repro.dataflow.partitioner.stable_hash` runs vectorized over
    the raw key column(s) (pure-Python loops without numpy), and
    multi-column keys replicate the tuple accumulator chain exactly, so
    placement matches the per-record shuffle bit for bit.  Byte
    accounting is identical too — per-row serialized sizes, cross-worker
    moves only.  The in-process :func:`shuffle_kernel` and the worker
    runtime's repartition shuffle share this one definition.
    """
    key_columns = tuple(key_columns)
    single = key_columns[0] if len(key_columns) == 1 else None
    out_chunks: List[List[EmbeddingChunk]] = [[] for _ in range(parallelism)]
    moved_records = 0
    moved_bytes = 0
    bytes_in = [0] * parallelism
    for chunk in chunks:
        columns = chunk.columns
        values = chunk.values
        row_width = columns * ENTRY_WIDTH
        path_offsets = chunk.path_offsets
        prop_offsets = chunk.prop_offsets
        if _np is not None and chunk.count >= _VECTOR_MIN_ROWS:
            targets = _shuffle_targets(
                chunk, key_columns, single, parallelism
            )
            moved_mask = targets != _np.uint64(source)
            moved = int(moved_mask.sum())
            if moved:
                moved_records += moved
                if not chunk.path_buf and not chunk.prop_buf:
                    # fixed-width rows: counting is enough
                    moved_bytes += moved * row_width
                    counted = _np.bincount(
                        targets[moved_mask].astype(_np.int64),
                        minlength=parallelism,
                    )
                    for target in range(parallelism):
                        bytes_in[target] += (
                            int(counted[target]) * row_width
                        )
                else:
                    sizes = row_width + _np.diff(
                        _np.array(path_offsets, dtype=_np.int64)
                    ) + _np.diff(
                        _np.array(prop_offsets, dtype=_np.int64)
                    )
                    moved_sizes = sizes[moved_mask]
                    moved_bytes += int(moved_sizes.sum())
                    counted = _np.bincount(
                        targets[moved_mask].astype(_np.int64),
                        weights=moved_sizes,
                        minlength=parallelism,
                    )
                    for target in range(parallelism):
                        bytes_in[target] += int(counted[target])
            for target in range(parallelism):
                rows = _np.nonzero(targets == _np.uint64(target))[0]
                if not rows.size:
                    continue
                if rows.size == chunk.count:
                    out_chunks[target].append(chunk)
                else:
                    out_chunks[target].append(
                        chunk.gather(rows.tolist())
                    )
            continue
        buckets: List[List[int]] = [[] for _ in range(parallelism)]
        if single is not None:
            keys = (
                values[single::columns] if columns > 1 else values
            )
            row_targets = []
            for key in keys:
                # splitmix64(key & _MASK) % parallelism, inlined
                z = (key + 0x9E3779B97F4A7C15) & _MASK
                z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
                z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
                row_targets.append(
                    ((z ^ (z >> 31)) & _MASK) % parallelism
                )
        else:
            row_targets = []
            for row in range(chunk.count):
                base = row * columns
                # stable_hash of the key tuple: acc chained through
                # splitmix64 over each part's own splitmix64 hash
                acc = 0x345678
                for c in key_columns:
                    part = values[base + c]
                    z = (part + 0x9E3779B97F4A7C15) & _MASK
                    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
                    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
                    z = acc ^ ((z ^ (z >> 31)) & _MASK)
                    z = (z + 0x9E3779B97F4A7C15) & _MASK
                    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
                    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
                    acc = (z ^ (z >> 31)) & _MASK
                row_targets.append(acc % parallelism)
        for row, target in enumerate(row_targets):
            buckets[target].append(row)
            if target != source:
                size = (
                    row_width
                    + path_offsets[row + 1]
                    - path_offsets[row]
                    + prop_offsets[row + 1]
                    - prop_offsets[row]
                )
                moved_records += 1
                moved_bytes += size
                bytes_in[target] += size
        for target, rows in enumerate(buckets):
            if not rows:
                continue
            if len(rows) == chunk.count:
                out_chunks[target].append(chunk)
            else:
                out_chunks[target].append(chunk.gather(rows))
    return out_chunks, moved_records, moved_bytes, bytes_in


def shuffle_kernel(key_columns):
    """Columnar hash-repartition over one or more id key columns.

    Splits every chunk by slicing columns (:func:`shuffle_split`) — no
    record is decoded and placement/accounting match the per-record
    shuffle bit for bit.  Returns ``(partitions, moved_records,
    moved_bytes, bytes_in)``.
    """
    key_columns = tuple(key_columns)

    def shuffle(partitions, parallelism):
        out_chunks: List[List[EmbeddingChunk]] = [[] for _ in range(parallelism)]
        moved_records = 0
        moved_bytes = 0
        bytes_in = [0] * parallelism
        for source, partition in enumerate(partitions):
            splits, split_moved, split_bytes, split_in = shuffle_split(
                partition.chunks, key_columns, parallelism, source
            )
            moved_records += split_moved
            moved_bytes += split_bytes
            for target in range(parallelism):
                bytes_in[target] += split_in[target]
                out_chunks[target].extend(splits[target])
        out = [ColumnarPartition(chunks) for chunks in out_chunks]
        return out, moved_records, moved_bytes, bytes_in

    return shuffle


# Hash join -------------------------------------------------------------------


class ColumnarJoinSpec:
    """Compiled columnar hash-join: key columns, merge shape, morphism.

    Exists only for path-free join shapes (PATH-bearing sides fall back to
    the per-record merge, which must rewrite offsets).  ``vertex_columns``
    / ``edge_columns`` are the merged-layout columns each isomorphism
    strategy watches — empty when the check is vacuous, mirroring
    :func:`repro.engine.morphism.compile_morphism_check`.
    """

    __slots__ = (
        "left_count",
        "left_columns",
        "right_columns",
        "keep_columns",
        "vertex_columns",
        "edge_columns",
    )

    def __init__(
        self,
        left_count,
        left_columns,
        right_columns,
        keep_columns,
        vertex_columns,
        edge_columns,
    ):
        self.left_count = left_count
        self.left_columns = left_columns
        self.right_columns = right_columns
        self.keep_columns = keep_columns
        self.vertex_columns = vertex_columns
        self.edge_columns = edge_columns

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def _build_table(self, build_chunks, build_is_left):
        """Key → list of pre-sliced ``(merge_values, prop_bytes)`` pairs.

        Build rows are sliced once here instead of once per match in the
        probe loop: a left-side build stores the full left row tuple, a
        right-side build stores only its kept columns.
        """
        key_columns = self.left_columns if build_is_left else self.right_columns
        keep = self.keep_columns
        table: Dict[Any, List[Tuple[Tuple[int, ...], bytes]]] = {}
        setdefault = table.setdefault
        single = key_columns[0] if len(key_columns) == 1 else None
        has_props = False
        for chunk in build_chunks:
            columns = chunk.columns
            values = chunk.values
            prop_buf = chunk.prop_buf
            prop_offsets = chunk.prop_offsets
            if prop_buf:
                has_props = True
            for row in range(chunk.count):
                base = row * columns
                if single is not None:
                    key = values[base + single]
                else:
                    key = tuple(values[base + c] for c in key_columns)
                if build_is_left:
                    merge_values = values[base:base + columns]
                else:
                    merge_values = tuple(values[base + c] for c in keep)
                start = prop_offsets[row]
                end = prop_offsets[row + 1]
                setdefault(key, []).append(
                    (merge_values, prop_buf[start:end] if end > start else b"")
                )
        return table, has_props

    def hash_join(self, build_chunks, probe_chunks, build_is_left, token=None):
        """Join two chunk lists; returns the output chunks.

        Output rows appear in exactly the order of the per-record
        ``_hash_join`` loop: probe rows in input order, each matched
        against build rows in build-insertion order.
        """
        table, build_has_props = self._build_table(build_chunks, build_is_left)
        if not table:
            return []
        get = table.get
        keep = self.keep_columns
        vertex_watch = self.vertex_columns
        edge_watch = self.edge_columns
        out_columns = self.left_count + len(keep)
        probe_key_columns = (
            self.right_columns if build_is_left else self.left_columns
        )
        single = (
            probe_key_columns[0] if len(probe_key_columns) == 1 else None
        )
        # distinctness as short-circuit pairwise comparisons: for the small
        # watch sets real patterns produce this beats building a set per
        # candidate row; large sets (quadratic pairs) keep the set check
        pairs = [
            (watch[i], watch[j])
            for watch in (vertex_watch, edge_watch)
            for i in range(len(watch))
            for j in range(i + 1, len(watch))
        ]
        check_pairs = tuple(pairs) if len(pairs) <= 8 else None
        # selective single-key joins skip most probe rows: an exact-integer
        # ``isin`` against the build keys drops the misses at C speed and
        # leaves the Python loop only the rows that actually match
        build_keys_arr = None
        if _np is not None and single is not None and len(table) > 0:
            build_keys_arr = _np.fromiter(
                table.keys(), dtype=_np.uint64, count=len(table)
            )
        out_chunks = []
        for chunk in probe_chunks:
            if token is not None:
                # batch boundary: one poll per probe chunk
                token.poll()
            columns = chunk.columns
            values = chunk.values
            prop_buf = chunk.prop_buf
            prop_offsets = chunk.prop_offsets
            # with no prop bytes on either side the whole prop bookkeeping
            # collapses to a zero offset table
            track_props = build_has_props or bool(prop_buf)
            if single is not None:
                probe_keys = (
                    values[single::columns] if columns > 1 else values
                )
            elif len(probe_key_columns) == 2:
                c0, c1 = probe_key_columns
                probe_keys = list(
                    zip(values[c0::columns], values[c1::columns])
                )
            else:
                probe_keys = [
                    tuple(
                        values[row * columns + c]
                        for c in probe_key_columns
                    )
                    for row in range(chunk.count)
                ]
            if (
                build_keys_arr is not None
                and chunk.count >= _VECTOR_MIN_ROWS
            ):
                keys_arr = _np.array(probe_keys, dtype=_np.uint64)
                hit_rows = _np.nonzero(
                    _np.isin(keys_arr, build_keys_arr)
                )[0].tolist()
                probe_items = [(row, probe_keys[row]) for row in hit_rows]
            else:
                probe_items = enumerate(probe_keys)
            out_values: List[int] = []
            extend = out_values.extend
            prop_parts: List[bytes] = []
            out_prop_offsets = [0]
            total = 0
            count = 0
            probe_prop = b""
            if not track_props and check_pairs == ():
                # fast path: no prop payloads, vacuous morphism — every
                # match merges unconditionally
                if build_is_left:
                    for row, key in probe_items:
                        matches = get(key)
                        if not matches:
                            continue
                        base = row * columns
                        probe_values = tuple(
                            values[base + c] for c in keep
                        )
                        for build_values, _ in matches:
                            extend(build_values)
                            extend(probe_values)
                        count += len(matches)
                else:
                    for row, key in probe_items:
                        matches = get(key)
                        if not matches:
                            continue
                        base = row * columns
                        probe_values = values[base:base + columns]
                        for build_values, _ in matches:
                            extend(probe_values)
                            extend(build_values)
                        count += len(matches)
                if count:
                    out_chunks.append(
                        EmbeddingChunk(
                            count,
                            out_columns,
                            (FLAG_ID,) * (count * out_columns),
                            tuple(out_values),
                            b"",
                            (0,) * (count + 1),
                            b"",
                            (0,) * (count + 1),
                        )
                    )
                continue
            if not track_props and check_pairs:
                # no prop payloads, small watch set: pairwise distinctness
                # with the build_is_left branch hoisted out of the loops
                if build_is_left:
                    for row, key in probe_items:
                        matches = get(key)
                        if not matches:
                            continue
                        base = row * columns
                        probe_values = tuple(
                            values[base + c] for c in keep
                        )
                        for build_values, _ in matches:
                            merged = build_values + probe_values
                            for a, b in check_pairs:
                                if merged[a] == merged[b]:
                                    break
                            else:
                                extend(merged)
                                count += 1
                else:
                    for row, key in probe_items:
                        matches = get(key)
                        if not matches:
                            continue
                        base = row * columns
                        probe_values = values[base:base + columns]
                        for build_values, _ in matches:
                            merged = probe_values + build_values
                            for a, b in check_pairs:
                                if merged[a] == merged[b]:
                                    break
                            else:
                                extend(merged)
                                count += 1
                if count:
                    out_chunks.append(
                        EmbeddingChunk(
                            count,
                            out_columns,
                            (FLAG_ID,) * (count * out_columns),
                            tuple(out_values),
                            b"",
                            (0,) * (count + 1),
                            b"",
                            (0,) * (count + 1),
                        )
                    )
                continue
            for row, key in probe_items:
                matches = get(key)
                if not matches:
                    continue
                # the probe row's merge slice and prop bytes, once per row
                base = row * columns
                if build_is_left:
                    probe_values = tuple(values[base + c] for c in keep)
                else:
                    probe_values = values[base:base + columns]
                if track_props:
                    start = prop_offsets[row]
                    end = prop_offsets[row + 1]
                    probe_prop = prop_buf[start:end] if end > start else b""
                for build_values, build_prop in matches:
                    if build_is_left:
                        merged = build_values + probe_values
                        left_prop, right_prop = build_prop, probe_prop
                    else:
                        merged = probe_values + build_values
                        left_prop, right_prop = probe_prop, build_prop
                    if check_pairs is not None:
                        collision = False
                        for a, b in check_pairs:
                            if merged[a] == merged[b]:
                                collision = True
                                break
                        if collision:
                            continue
                    else:
                        if vertex_watch and len(
                            {merged[c] for c in vertex_watch}
                        ) != len(vertex_watch):
                            continue
                        if edge_watch and len(
                            {merged[c] for c in edge_watch}
                        ) != len(edge_watch):
                            continue
                    extend(merged)
                    count += 1
                    if track_props:
                        if left_prop:
                            prop_parts.append(left_prop)
                            total += len(left_prop)
                        if right_prop:
                            prop_parts.append(right_prop)
                            total += len(right_prop)
                        out_prop_offsets.append(total)
            if count:
                out_chunks.append(
                    EmbeddingChunk(
                        count,
                        out_columns,
                        (FLAG_ID,) * (count * out_columns),
                        tuple(out_values),
                        b"",
                        (0,) * (count + 1),
                        b"".join(prop_parts) if track_props else b"",
                        tuple(out_prop_offsets)
                        if track_props
                        else (0,) * (count + 1),
                    )
                )
        return out_chunks


def columnar_join_spec(
    left_meta,
    right_meta,
    join_variables,
    drop_columns,
    merged_meta,
    vertex_strategy,
    edge_strategy,
):
    """The :class:`ColumnarJoinSpec` of a join shape, or ``None``.

    Unsupported (``None``): any PATH column on either side — the merge
    would rewrite offsets and the morphism check would walk paths, both of
    which stay on the per-record fallback.
    """
    for meta in (left_meta, right_meta):
        for variable in meta.variables:
            if meta.entry_kind(variable) == "p":
                return None
    drop = frozenset(drop_columns)
    keep_columns = tuple(
        column
        for column in range(right_meta.column_count)
        if column not in drop
    )
    vertex_iso = vertex_strategy is MatchStrategy.ISOMORPHISM
    edge_iso = edge_strategy is MatchStrategy.ISOMORPHISM
    vertex_columns: Tuple[int, ...] = ()
    edge_columns: Tuple[int, ...] = ()
    if vertex_iso:
        watched = tuple(
            merged_meta.entry_column(variable)
            for variable in merged_meta.variables
            if merged_meta.entry_kind(variable) == "v"
        )
        if len(watched) > 1:
            vertex_columns = watched
    if edge_iso:
        watched = tuple(
            merged_meta.entry_column(variable)
            for variable in merged_meta.variables
            if merged_meta.entry_kind(variable) == "e"
        )
        if len(watched) > 1:
            edge_columns = watched
    return ColumnarJoinSpec(
        left_meta.column_count,
        tuple(left_meta.entry_column(v) for v in join_variables),
        tuple(right_meta.entry_column(v) for v in join_variables),
        keep_columns,
        vertex_columns,
        edge_columns,
    )

"""The greedy query planner (paper §3.2).

"Our reference implementation follows a greedy approach by decomposing the
query into sets of vertices and edges and constructing a bushy query plan
by iteratively joining embeddings and choosing the query plan that
minimizes the size of intermediate results.  Vertices and edges that are
covered by that plan are removed from the initial sets until there is only
one plan left."

Additional behaviours mirrored from Gradoop:

* a query vertex gets its own leaf operator only if it carries predicates
  or its properties are needed downstream — otherwise the binding comes
  for free from the adjacent edge's endpoint column;
* cross-element WHERE clauses are applied by ``SelectEmbeddings`` as soon
  as all their variables are bound;
* variable-length edges become ``ExpandEmbeddings``, closing when both
  endpoints are already bound, expanding in reverse when only the target
  side is.
"""

from dataclasses import dataclass

from repro.cypher.predicates import CNF, cnf_signature

from ..morphism import DEFAULT_EDGE_STRATEGY, DEFAULT_VERTEX_STRATEGY
from ..operators.expand import ExpandEmbeddings
from ..operators.filter_project import ProjectEmbeddings, SelectEmbeddings
from ..operators.join import CartesianEmbeddings, JoinEmbeddings
from ..operators.leaves import SelectAndProjectEdges, SelectAndProjectVertices
from .estimation import CardinalityEstimator


@dataclass
class _Entry:
    """A partial plan: operator, covered variables, estimated rows."""

    op: object
    variables: frozenset
    cardinality: float


class PlanningError(Exception):
    pass


class GreedyPlanner:
    """Builds a bushy physical plan minimizing intermediate cardinality."""

    def __init__(
        self,
        graph,
        query_handler,
        statistics,
        vertex_strategy=None,
        edge_strategy=None,
        reuse_leaf_scans=True,
        join_strategy=None,
    ):
        """``reuse_leaf_scans``: share one dataset between leaf operators
        with identical selection/projection (e.g. the three ``:knows``
        scans of the triangle query) — the recurring-subquery reuse the
        paper lists as ongoing work (§5).

        ``join_strategy``: force one physical join strategy for every
        JoinEmbeddings (default: the AUTO size heuristic)."""
        self.graph = graph
        self.handler = query_handler
        self.statistics = statistics
        self.estimator = CardinalityEstimator(statistics)
        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self.reuse_leaf_scans = reuse_leaf_scans
        from repro.dataflow import JoinStrategy

        self.join_strategy = join_strategy or JoinStrategy.AUTO
        self._leaf_dataset_cache = {}

    # Public API ----------------------------------------------------------------

    def plan(self):
        """The root physical operator of the chosen plan."""
        entries = self._initial_entries()
        pending = list(self.handler.edges.values())
        applied_clauses = set()

        while pending:
            best_edge, best_cardinality = None, None
            for edge in pending:
                entry, _ = self._edge_candidate(
                    edge, entries, applied_clauses, dry_run=True
                )
                if best_cardinality is None or entry.cardinality < best_cardinality:
                    best_edge, best_cardinality = edge, entry.cardinality
            # rebuild the winner, this time recording which global clauses
            # its SelectEmbeddings consumed
            best_entry, consumed = self._edge_candidate(
                best_edge, entries, applied_clauses, dry_run=False
            )
            pending.remove(best_edge)
            for entry in consumed:
                entries.remove(entry)
            entries.append(best_entry)

        return self._finish(entries, applied_clauses)

    def _finish(self, entries, applied_clauses):
        """Combine remaining entries, apply leftover predicates, project."""
        # disconnected components / isolated vertices: prefer a value join
        # on a cross-entry property equality (paper §3.1's extensibility
        # example: "join subqueries on property values"), falling back to
        # a Cartesian product
        entries.sort(key=lambda entry: entry.cardinality)
        while len(entries) > 1:
            value_join = self._find_property_join(entries, applied_clauses)
            if value_join is not None:
                left, right, clause, left_pair, right_pair = value_join
                from ..operators.value_join import JoinEmbeddingsOnProperty
                from .estimation import EQUALITY_SELECTIVITY

                op = JoinEmbeddingsOnProperty(
                    left.op,
                    right.op,
                    left_pair,
                    right_pair,
                    self.vertex_strategy,
                    self.edge_strategy,
                )
                cardinality = (
                    left.cardinality * right.cardinality * EQUALITY_SELECTIVITY
                )
                applied_clauses.add(id(clause))
                entries.remove(left)
                entries.remove(right)
            else:
                left, right = entries[0], entries[1]
                op = CartesianEmbeddings(
                    left.op, right.op, self.vertex_strategy, self.edge_strategy
                )
                cardinality = self.estimator.cartesian_cardinality(
                    left.cardinality, right.cardinality
                )
                entries = entries[2:]
            op.estimated_cardinality = cardinality
            merged = _Entry(op, left.variables | right.variables, cardinality)
            merged = self._apply_available_predicates(merged, applied_clauses)
            entries.append(merged)
            entries.sort(key=lambda entry: entry.cardinality)

        if not entries:
            raise PlanningError("query has no vertices")
        root_entry = entries[0]

        missing = [
            clause
            for clause in self.handler.global_predicates.clauses
            if id(clause) not in applied_clauses
        ]
        if missing:
            op = SelectEmbeddings(root_entry.op, CNF(missing))
            op.estimated_cardinality = self.estimator.selection_cardinality(
                root_entry.cardinality, CNF(missing)
            )
            root_entry = _Entry(op, root_entry.variables, op.estimated_cardinality)

        return self._final_projection(root_entry)

    # Initial entries ----------------------------------------------------------------

    def _vertex_needs_leaf(self, variable):
        vertex = self.handler.vertices[variable]
        return (
            not vertex.predicates.is_trivial
            or bool(self.handler.property_keys(variable))
        )

    def _vertex_is_isolated(self, variable):
        return not any(
            variable in (edge.source, edge.target)
            for edge in self.handler.edges.values()
        )

    def _vertex_leaf(self, variable):
        vertex = self.handler.vertices[variable]
        keys = self.handler.property_keys(variable)
        op = SelectAndProjectVertices(self.graph, vertex, keys)
        self._share_leaf_dataset(
            op,
            (
                "v",
                tuple(sorted(vertex.labels)),
                cnf_signature(vertex.predicates),
                tuple(sorted(keys)),
            ),
        )
        op.estimated_cardinality = self.estimator.vertex_cardinality(vertex)
        return _Entry(op, frozenset([variable]), op.estimated_cardinality)

    def _share_leaf_dataset(self, op, signature):
        """Point ``op`` at an existing identical leaf's dataset, if any."""
        if not self.reuse_leaf_scans:
            return
        cached = self._leaf_dataset_cache.get(signature)
        if cached is not None:
            op._dataset = cached
        else:
            self._leaf_dataset_cache[signature] = op.evaluate()

    def _initial_entries(self):
        entries = []
        for variable in self.handler.vertices:
            if self._vertex_is_isolated(variable) or self._vertex_needs_leaf(variable):
                entries.append(self._vertex_leaf(variable))
        return entries

    # Candidate construction -------------------------------------------------------

    def _find_entry(self, entries, variable):
        for entry in entries:
            if variable in entry.variables:
                return entry
        return None

    def _find_property_join(self, entries, applied_clauses):
        """A cross-entry single-atom property equality usable as a join.

        Returns ``(left_entry, right_entry, clause, (var, key), (var, key))``
        or ``None``.
        """
        from repro.cypher.ast import PropertyAccess

        for clause in self.handler.global_predicates.clauses:
            if id(clause) in applied_clauses or len(clause.atoms) != 1:
                continue
            atom = clause.atoms[0]
            comparison = atom.comparison
            if atom.negated or comparison.operator != "=":
                continue
            left_side, right_side = comparison.left, comparison.right
            if not (
                isinstance(left_side, PropertyAccess)
                and isinstance(right_side, PropertyAccess)
            ):
                continue
            left_entry = self._find_entry(entries, left_side.variable)
            right_entry = self._find_entry(entries, right_side.variable)
            if left_entry is None or right_entry is None:
                continue
            if left_entry is right_entry:
                continue
            if not left_entry.op.meta.has_property(
                left_side.variable, left_side.key
            ) or not right_entry.op.meta.has_property(
                right_side.variable, right_side.key
            ):
                continue
            return (
                left_entry,
                right_entry,
                clause,
                (left_side.variable, left_side.key),
                (right_side.variable, right_side.key),
            )
        return None

    def _edge_candidate(self, edge, entries, applied_clauses, dry_run):
        """Best way to fold ``edge`` into the current entries.

        Returns ``(new_entry, consumed_entries)``; with ``dry_run`` no
        planner state is mutated.
        """
        source_entry = self._find_entry(entries, edge.source)
        target_entry = self._find_entry(entries, edge.target)
        if edge.is_variable_length:
            entry, consumed = self._expand_candidate(
                edge, entries, source_entry, target_entry
            )
        else:
            entry, consumed = self._join_candidate(
                edge, entries, source_entry, target_entry
            )
        entry = self._apply_available_predicates(
            entry, applied_clauses, dry_run=dry_run
        )
        return entry, consumed

    def _join_candidate(self, edge, entries, source_entry, target_entry):
        from ..morphism import MatchStrategy

        keys = self.handler.property_keys(edge.variable)
        distinct_endpoints = self.vertex_strategy is MatchStrategy.ISOMORPHISM
        leaf = SelectAndProjectEdges(
            self.graph, edge, keys, distinct_endpoints=distinct_endpoints
        )
        self._share_leaf_dataset(
            leaf,
            (
                "e",
                tuple(sorted(edge.types)),
                cnf_signature(edge.predicates),
                tuple(sorted(keys)),
                edge.source == edge.target,
                edge.undirected,
                distinct_endpoints,
            ),
        )
        leaf.estimated_cardinality = self.estimator.edge_cardinality(edge)
        edge_vars = (
            frozenset([edge.variable, edge.source])
            if edge.source == edge.target
            else frozenset([edge.variable, edge.source, edge.target])
        )
        entry = _Entry(leaf, edge_vars, leaf.estimated_cardinality)
        consumed = []

        if source_entry is not None and source_entry is target_entry:
            # cycle closing: both endpoints in one plan
            join_vars = [edge.source]
            if edge.source != edge.target:
                join_vars.append(edge.target)
            entry = self._join(source_entry, entry, join_vars, edge)
            consumed.append(source_entry)
            return entry, consumed

        if source_entry is not None:
            entry = self._join(source_entry, entry, [edge.source], edge)
            consumed.append(source_entry)
        elif self._vertex_needs_leaf(edge.source):
            entry = self._join(self._vertex_leaf(edge.source), entry, [edge.source], edge)

        if target_entry is not None:
            entry = self._join(entry, target_entry, [edge.target], edge)
            consumed.append(target_entry)
        elif edge.source != edge.target and self._vertex_needs_leaf(edge.target):
            entry = self._join(entry, self._vertex_leaf(edge.target), [edge.target], edge)

        return entry, consumed

    def _expand_candidate(self, edge, entries, source_entry, target_entry):
        consumed = []
        if source_entry is not None:
            base, reverse = source_entry, False
            consumed.append(source_entry)
            far_entry = target_entry if target_entry is not source_entry else None
        elif target_entry is not None:
            base, reverse = target_entry, True
            consumed.append(target_entry)
            far_entry = None
        else:
            base, reverse = self._vertex_leaf(edge.source), False
            far_entry = None
        end_of_expansion = edge.source if reverse else edge.target
        closing = end_of_expansion in base.variables

        op = ExpandEmbeddings(
            base.op,
            self.graph,
            edge,
            self.vertex_strategy,
            self.edge_strategy,
            closing=closing,
            reverse=reverse,
        )
        op.estimated_cardinality = self.estimator.expand_cardinality(
            base.cardinality, edge, closing
        )
        entry = _Entry(
            op,
            base.variables | {edge.variable, edge.source, edge.target},
            op.estimated_cardinality,
        )

        end_variable = edge.source if reverse else edge.target
        if not closing:
            if far_entry is not None:
                entry = self._join(entry, far_entry, [end_variable], edge)
                consumed.append(far_entry)
            elif self._vertex_needs_leaf(end_variable):
                entry = self._join(
                    entry, self._vertex_leaf(end_variable), [end_variable], edge
                )
        return entry, consumed

    def _join(self, left, right, join_variables, edge):
        op = JoinEmbeddings(
            left.op,
            right.op,
            join_variables,
            self.vertex_strategy,
            self.edge_strategy,
            strategy=self.join_strategy,
        )
        left_distinct = self._distinct_estimate(left, join_variables, edge)
        right_distinct = self._distinct_estimate(right, join_variables, edge)
        cardinality = self.estimator.join_cardinality(
            left.cardinality, right.cardinality, left_distinct, right_distinct
        )
        op.estimated_cardinality = cardinality
        return _Entry(op, left.variables | right.variables, cardinality)

    def _distinct_estimate(self, entry, join_variables, edge):
        """Distinct join-key values a side can contribute."""
        estimate = 1.0
        for variable in join_variables:
            if isinstance(entry.op, SelectAndProjectEdges) and variable == edge.source:
                estimate *= self.estimator.edge_endpoint_distinct(edge, "source")
            elif isinstance(entry.op, SelectAndProjectEdges) and variable == edge.target:
                estimate *= self.estimator.edge_endpoint_distinct(edge, "target")
            else:
                labels = (
                    self.handler.vertices[variable].labels
                    if variable in self.handler.vertices
                    else []
                )
                estimate *= self.estimator.distinct_vertices(entry.cardinality, labels)
        return estimate

    # Predicates and projection -----------------------------------------------------

    def _apply_available_predicates(self, entry, applied_clauses, dry_run=False):
        available = []
        for clause in self.handler.global_predicates.clauses:
            if id(clause) in applied_clauses:
                continue
            if clause.variables() <= entry.variables:
                available.append(clause)
        if not available:
            return entry
        if not dry_run:
            for clause in available:
                applied_clauses.add(id(clause))
        cnf = CNF(available)
        op = SelectEmbeddings(entry.op, cnf)
        op.estimated_cardinality = self.estimator.selection_cardinality(
            entry.cardinality, cnf
        )
        return _Entry(op, entry.variables, op.estimated_cardinality)

    def _final_projection(self, entry):
        returns = self.handler.ast.returns
        if returns is None or returns.star or not returns.items:
            return entry.op
        from repro.cypher.ast import FunctionCall, PropertyAccess

        expressions = [item.expression for item in returns.items]
        expressions += [order.expression for order in returns.order_by]
        keep = []
        for expression in expressions:
            if isinstance(expression, FunctionCall):
                expression = expression.argument
            if isinstance(expression, PropertyAccess):
                pair = (expression.variable, expression.key)
                if pair not in keep and entry.op.meta.has_property(*pair):
                    keep.append(pair)
        if sorted(keep) == sorted(entry.op.meta.property_entries()):
            return entry.op  # nothing to drop
        op = ProjectEmbeddings(entry.op, keep)
        op.estimated_cardinality = entry.cardinality
        return op

"""Baseline planner: joins edges in textual order, ignoring statistics.

Used by the planner ablation (DESIGN.md E8) to quantify what greedy
reordering buys.  Implementation: delegates candidate construction to
:class:`GreedyPlanner` but always picks the *first* pending edge instead
of the cheapest candidate.
"""

from .greedy import GreedyPlanner


class LeftDeepPlanner(GreedyPlanner):
    """Folds query edges strictly in the order they appear in the query."""

    def plan(self):
        entries = self._initial_entries()
        pending = list(self.handler.edges.values())
        applied_clauses = set()

        while pending:
            edge = pending.pop(0)
            entry, consumed = self._edge_candidate(
                edge, entries, applied_clauses, dry_run=False
            )
            for used in consumed:
                entries.remove(used)
            entries.append(entry)

        return self._finish(entries, applied_clauses)

"""Join cardinality estimation (paper §3.2).

"We use basic approaches from relational query planning to estimate the
join cardinality" — textbook formulas over the pre-computed
:class:`~repro.engine.statistics.GraphStatistics`:

* leaf cardinality = label count × a fixed selectivity per non-label
  predicate clause;
* ``|L ⋈ R| = |L|·|R| / max(V(L,a), V(R,a))`` with distinct-value counts
  taken from the per-label distinct source/target statistics;
* a variable-length expansion multiplies by the average out-degree once
  per hop, summed over the allowed path lengths.
"""

from repro.cypher.ast import LabelRef

#: Selectivity guesses for predicate clauses the statistics cannot resolve.
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.5

_RANGE_OPERATORS = {"<", "<=", ">", ">="}


def _is_label_clause(clause):
    return any(
        isinstance(atom.comparison.left, LabelRef)
        or isinstance(atom.comparison.right, LabelRef)
        for atom in clause.atoms
    )


def clause_selectivity(clause):
    """Heuristic selectivity of one non-label CNF clause."""
    best = 0.0
    for atom in clause.atoms:
        operator = atom.comparison.operator
        if operator == "=":
            selectivity = EQUALITY_SELECTIVITY
        elif operator in _RANGE_OPERATORS:
            selectivity = RANGE_SELECTIVITY
        else:
            selectivity = DEFAULT_SELECTIVITY
        if atom.negated:
            selectivity = 1.0 - selectivity
        best = max(best, selectivity)  # a disjunction is as selective as its
        # least selective satisfied atom
    return min(best if clause.atoms else 1.0, 1.0)


def predicate_selectivity(cnf):
    """Combined selectivity of all non-label clauses of a CNF."""
    selectivity = 1.0
    for clause in cnf.clauses:
        if _is_label_clause(clause):
            continue
        selectivity *= clause_selectivity(clause)
    return selectivity


class CardinalityEstimator:
    """Estimates intermediate result sizes for the greedy planner."""

    def __init__(self, statistics):
        self.statistics = statistics

    # Leaves ---------------------------------------------------------------

    def vertex_cardinality(self, query_vertex):
        base = self.statistics.vertices_with_labels(query_vertex.labels)
        return max(base * predicate_selectivity(query_vertex.predicates), 0.0)

    def edge_cardinality(self, query_edge):
        base = self.statistics.edges_with_labels(query_edge.types)
        if query_edge.undirected:
            base *= 2  # both orientations are emitted
        return max(base * predicate_selectivity(query_edge.predicates), 0.0)

    # Distinct-value estimates ------------------------------------------------

    def distinct_vertices(self, cardinality, labels):
        """Distinct bindings a plan of ``cardinality`` rows can hold for a
        vertex variable with the given label alternation."""
        return max(min(cardinality, self.statistics.vertices_with_labels(labels)), 1.0)

    def edge_endpoint_distinct(self, query_edge, endpoint):
        """Distinct source/target vertices of the edge relation."""
        if endpoint == "source":
            return float(self.statistics.distinct_sources(query_edge.types))
        return float(self.statistics.distinct_targets(query_edge.types))

    # Composite operators --------------------------------------------------------

    def join_cardinality(self, left_card, right_card, left_distinct, right_distinct):
        denominator = max(left_distinct, right_distinct, 1.0)
        return (left_card * right_card) / denominator

    def expand_cardinality(self, input_card, query_edge, closing):
        """Iterated-join estimate for a variable-length expansion."""
        edges = self.statistics.edges_with_labels(query_edge.types)
        edges *= predicate_selectivity(query_edge.predicates)
        sources = self.statistics.distinct_sources(query_edge.types)
        fanout = edges / max(sources, 1)
        if query_edge.undirected:
            fanout *= 2
        total = 0.0
        for hops in range(max(query_edge.lower, 1), query_edge.upper + 1):
            total += fanout**hops
        if query_edge.lower == 0:
            total += 1.0  # the zero-length path binds source = target
        estimate = input_card * total
        if closing:
            estimate /= max(self.statistics.vertex_count, 1)
        return estimate

    def selection_cardinality(self, input_card, cnf):
        return input_card * predicate_selectivity(cnf)

    def cartesian_cardinality(self, left_card, right_card):
        return left_card * right_card

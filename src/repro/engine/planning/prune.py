"""Liveness-driven plan pruning: drop dead property bytes early.

The backward liveness pass (:mod:`repro.analysis.liveness`) computes, for
every operator output, exactly which property records any downstream
consumer reads.  This rewriter applies that information in two moves:

* **narrow leaf extraction** — a key loaded only for an element-local
  predicate (evaluated on the element inside the leaf's flat-map, before
  projection) never needs to enter the embedding at all;
* **insert early projections** — a record consumed partway up the plan
  (a value-join key, a mid-plan selection operand) is projected away
  immediately above its last consumer instead of riding to the root.

Only ``prop_data`` bytes are ever pruned.  Id columns and path slots are
structural — result construction, the differential harnesses' canonical
rows and the morphism checks may read them — so embeddings keep their
column layout and every pruned plan remains result-equivalent to the
original (the liveness property suite pins this across planners and
morphism configurations).

The rewrite *rebuilds* the operator tree bottom-up rather than mutating
it: every operator precomputes byte offsets from its children's metadata
at construction time, so swapping a child in place would desynchronize
the compiled accessors from the actual layout.
"""


def prune_plan(root, handler=None, vertex_strategy=None, edge_strategy=None):
    """Rewrite ``root`` to carry only live property bytes.

    Returns the (possibly new) plan root; when liveness finds nothing to
    prune the original operator objects are returned untouched, so leaf
    dataset sharing and cached evaluations survive.  Unknown operators
    act as rewrite barriers: nothing below them is changed.
    """
    from repro.analysis.liveness import verify_liveness

    report = verify_liveness(
        root, handler,
        vertex_strategy=vertex_strategy, edge_strategy=edge_strategy,
    )
    rewriter = _Pruner(report, vertex_strategy, edge_strategy)
    new_root = rewriter.rewrite(root)
    return rewriter.narrow(new_root, root)


class _Pruner:
    """Bottom-up rebuild applying one liveness report."""

    def __init__(self, report, vertex_strategy, edge_strategy):
        self.report = report

    def rewrite(self, op):
        from repro.engine.operators.expand import ExpandEmbeddings
        from repro.engine.operators.filter_project import (
            ProjectEmbeddings,
            SelectEmbeddings,
        )
        from repro.engine.operators.join import (
            CartesianEmbeddings,
            JoinEmbeddings,
        )
        from repro.engine.operators.leaves import (
            SelectAndProjectEdges,
            SelectAndProjectVertices,
        )
        from repro.engine.operators.value_join import JoinEmbeddingsOnProperty

        demand = self.report.demand_of(op)
        if demand is None:
            return op  # below an unknown operator: rewrite barrier

        if isinstance(op, SelectAndProjectVertices):
            keys = [
                key for key in op.property_keys
                if (op.query_vertex.variable, key) in demand.properties
            ]
            if keys == op.property_keys:
                return op
            return self._copy_estimate(
                SelectAndProjectVertices(op.graph, op.query_vertex, keys), op
            )
        if isinstance(op, SelectAndProjectEdges):
            keys = [
                key for key in op.property_keys
                if (op.query_edge.variable, key) in demand.properties
            ]
            if keys == op.property_keys:
                return op
            return self._copy_estimate(
                SelectAndProjectEdges(
                    op.graph, op.query_edge, keys,
                    distinct_endpoints=op.distinct_endpoints,
                ),
                op,
            )
        if isinstance(op, SelectEmbeddings):
            child = self.narrow(self.rewrite(op.children[0]), op.children[0])
            if child is op.children[0]:
                return op
            return self._copy_estimate(SelectEmbeddings(child, op.cnf), op)
        if isinstance(op, ProjectEmbeddings):
            child = self.narrow(self.rewrite(op.children[0]), op.children[0])
            keep = [
                tuple(pair) for pair in op.keep_pairs
                if tuple(pair) in demand.properties
                and child.meta.has_property(*pair)
            ]
            if child is op.children[0] and keep == [
                tuple(pair) for pair in op.keep_pairs
            ]:
                return op
            return self._copy_estimate(ProjectEmbeddings(child, keep), op)
        if isinstance(op, JoinEmbeddings):
            left, right = self._rewrite_sides(op)
            if left is op.children[0] and right is op.children[1]:
                return op
            return self._copy_estimate(
                JoinEmbeddings(
                    left, right, op.join_variables,
                    op.vertex_strategy, op.edge_strategy,
                    strategy=op.strategy,
                ),
                op,
            )
        if isinstance(op, CartesianEmbeddings):
            left, right = self._rewrite_sides(op)
            if left is op.children[0] and right is op.children[1]:
                return op
            return self._copy_estimate(
                CartesianEmbeddings(
                    left, right, op.vertex_strategy, op.edge_strategy
                ),
                op,
            )
        if isinstance(op, JoinEmbeddingsOnProperty):
            left, right = self._rewrite_sides(op)
            if left is op.children[0] and right is op.children[1]:
                return op
            return self._copy_estimate(
                JoinEmbeddingsOnProperty(
                    left, right, op.left_property, op.right_property,
                    op.vertex_strategy, op.edge_strategy,
                ),
                op,
            )
        if isinstance(op, ExpandEmbeddings):
            child = self.narrow(self.rewrite(op.children[0]), op.children[0])
            if child is op.children[0]:
                return op
            return self._copy_estimate(
                ExpandEmbeddings(
                    child, op.graph, op.query_edge,
                    op.vertex_strategy, op.edge_strategy,
                    op.closing, reverse=op.reverse,
                ),
                op,
            )
        return op  # no rebuild rule: leave the subtree untouched

    def _rewrite_sides(self, op):
        """Rewrite and narrow both inputs of a binary operator."""
        left = self.narrow(self.rewrite(op.children[0]), op.children[0])
        right = self.narrow(self.rewrite(op.children[1]), op.children[1])
        return left, right

    def narrow(self, new_op, original):
        """Project away records dead at ``original``'s output, if any.

        ``new_op`` is the rewritten operator, ``original`` the operator it
        replaced (whose identity keys the liveness report).  Placing the
        projection here — directly above the last consumer — is the
        earliest point liveness allows.
        """
        from repro.engine.operators.filter_project import ProjectEmbeddings

        demand = self.report.demand_of(original)
        if demand is None or new_op.meta is None:
            return new_op
        carried = list(new_op.meta.property_entries())
        keep = [pair for pair in carried if pair in demand.properties]
        if keep == carried:
            return new_op
        projection = ProjectEmbeddings(new_op, keep)
        projection.estimated_cardinality = new_op.estimated_cardinality
        return projection

    @staticmethod
    def _copy_estimate(new_op, original):
        new_op.estimated_cardinality = original.estimated_cardinality
        return new_op

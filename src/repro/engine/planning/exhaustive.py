"""Exhaustive plan enumeration for small queries.

Tries every edge-folding order (bounded by :data:`MAX_EDGES`), scores each
by the *total* estimated intermediate cardinality, and rebuilds the
cheapest — the textbook alternative to the paper's greedy heuristic,
useful to quantify how far greedy lands from the enumerated optimum (with
respect to the same estimates).  Falls back to greedy beyond the bound,
where enumeration would explode.
"""

from itertools import permutations

from .greedy import GreedyPlanner

#: orders are factorial in the edge count; 6! = 720 is still instant
MAX_EDGES = 6


class ExhaustivePlanner(GreedyPlanner):
    """Minimum total-estimated-cardinality plan by enumeration."""

    def plan(self):
        edges = list(self.handler.edges.values())
        if len(edges) > MAX_EDGES:
            return super().plan()

        best_order = None
        best_cost = None
        for order in permutations(edges):
            cost = self._order_cost(order)
            if cost is None:
                continue
            if best_cost is None or cost < best_cost:
                best_order, best_cost = order, cost
        if best_order is None:
            return super().plan()
        return self._build_in_order(best_order)

    def _order_cost(self, order):
        """Total estimated intermediate rows when folding in this order."""
        entries = self._initial_entries()
        applied = set()
        total = 0.0
        for edge in order:
            entry, consumed = self._edge_candidate(
                edge, entries, applied, dry_run=True
            )
            total += entry.cardinality
            for used in consumed:
                entries.remove(used)
            entries.append(entry)
        return total

    def _build_in_order(self, order):
        """Rebuild the winning order with clause bookkeeping enabled."""
        entries = self._initial_entries()
        applied_clauses = set()
        for edge in order:
            entry, consumed = self._edge_candidate(
                edge, entries, applied_clauses, dry_run=False
            )
            for used in consumed:
                entries.remove(used)
            entries.append(entry)
        return self._finish(entries, applied_clauses)

"""Query planning: cardinality estimation and plan construction."""

from .estimation import (
    CardinalityEstimator,
    clause_selectivity,
    predicate_selectivity,
)
from .exhaustive import ExhaustivePlanner
from .greedy import GreedyPlanner, PlanningError
from .naive_order import LeftDeepPlanner
from .prune import prune_plan

__all__ = [
    "CardinalityEstimator",
    "ExhaustivePlanner",
    "GreedyPlanner",
    "LeftDeepPlanner",
    "PlanningError",
    "clause_selectivity",
    "predicate_selectivity",
    "prune_plan",
]

"""Match semantics (Definition 2.3) and their enforcement.

Unlike Neo4j (vertex homomorphism, edge isomorphism, fixed), Gradoop lets
the caller choose the strategy per element kind (paper §2.3).  Isomorphism
means the binding function is injective: no two query vertices (edges) may
bind the same data vertex (edge).  Variable-length paths participate —
their internal vertices/edges count toward distinctness.
"""

import enum

from .embedding import ENTRY_WIDTH, _ID


class MatchStrategy(enum.Enum):
    HOMOMORPHISM = "homomorphism"
    ISOMORPHISM = "isomorphism"


#: Neo4j-compatible defaults used when the caller does not specify.
DEFAULT_VERTEX_STRATEGY = MatchStrategy.HOMOMORPHISM
DEFAULT_EDGE_STRATEGY = MatchStrategy.ISOMORPHISM


def check_distinct(values):
    """True iff no value repeats."""
    seen = set()
    for value in values:
        if value in seen:
            return False
        seen.add(value)
    return True


def embedding_satisfies_morphism(embedding, meta, vertex_strategy, edge_strategy):
    """Full injectivity check over an embedding.

    Under vertex isomorphism all vertex columns plus every path-internal
    vertex must be pairwise distinct; under edge isomorphism all edge
    columns plus every path edge must be.  Homomorphism performs no check.
    """
    vertex_iso = vertex_strategy is MatchStrategy.ISOMORPHISM
    edge_iso = edge_strategy is MatchStrategy.ISOMORPHISM
    if not vertex_iso and not edge_iso:
        return True
    vertex_ids = []
    edge_ids = []
    for variable in meta.variables:
        column = meta.entry_column(variable)
        kind = meta.entry_kind(variable)
        if kind == "v":
            if vertex_iso:
                vertex_ids.append(embedding.id_at(column).value)
        elif kind == "e":
            if edge_iso:
                edge_ids.append(embedding.id_at(column).value)
        elif kind == "p":
            path = embedding.path_at(column)
            # via = [e1, v1, e2, v2, ..., ek]: even indices are edges
            for index, gid in enumerate(path):
                if index % 2 == 0:
                    if edge_iso:
                        edge_ids.append(gid.value)
                elif vertex_iso:
                    vertex_ids.append(gid.value)
    if vertex_iso and not check_distinct(vertex_ids):
        return False
    if edge_iso and not check_distinct(edge_ids):
        return False
    return True


def compile_morphism_check(meta, vertex_strategy, edge_strategy):
    """A compiled ``embedding -> bool`` morphism check for one meta shape.

    Pre-computes the byte offsets of the id columns each strategy watches
    (see :meth:`EmbeddingMetaData.id_reader` for the layout argument), so
    the per-embedding check is a handful of ``unpack_from`` calls and one
    set-cardinality comparison — no variable re-sorting, no GradoopId
    allocation.  Returns ``None`` when the strategies cannot reject any
    embedding of this shape (both homomorphism, or fewer than two watched
    columns and no paths): callers skip the check entirely.  Path-bearing
    shapes fall back to :func:`embedding_satisfies_morphism`.
    """
    vertex_iso = vertex_strategy is MatchStrategy.ISOMORPHISM
    edge_iso = edge_strategy is MatchStrategy.ISOMORPHISM
    if not vertex_iso and not edge_iso:
        return None
    vertex_offsets = []
    edge_offsets = []
    has_paths = False
    for variable in meta.variables:
        column = meta.entry_column(variable)
        kind = meta.entry_kind(variable)
        if kind == "v":
            if vertex_iso:
                vertex_offsets.append(column * ENTRY_WIDTH + 1)
        elif kind == "e":
            if edge_iso:
                edge_offsets.append(column * ENTRY_WIDTH + 1)
        else:
            has_paths = True

    if has_paths:
        def check(embedding):
            return embedding_satisfies_morphism(
                embedding, meta, vertex_strategy, edge_strategy
            )

        return check

    vertex_offsets = tuple(vertex_offsets) if len(vertex_offsets) > 1 else ()
    edge_offsets = tuple(edge_offsets) if len(edge_offsets) > 1 else ()
    if not vertex_offsets and not edge_offsets:
        return None  # nothing to compare: the check is vacuously true
    unpack_from = _ID.unpack_from

    if vertex_offsets and edge_offsets:
        def check(embedding):
            data = embedding.id_data
            ids = [unpack_from(data, offset)[0] for offset in vertex_offsets]
            if len(set(ids)) != len(ids):
                return False
            ids = [unpack_from(data, offset)[0] for offset in edge_offsets]
            return len(set(ids)) == len(ids)

    else:
        offsets = vertex_offsets or edge_offsets

        def check(embedding):
            data = embedding.id_data
            ids = [unpack_from(data, offset)[0] for offset in offsets]
            return len(set(ids)) == len(ids)

    return check


def morphism_violations(embedding, meta, vertex_strategy, edge_strategy):
    """Every injectivity violation of ``embedding``, with provenance.

    Returns human-readable strings naming the duplicated identifier and
    the query variables (including ``var[i]`` path positions) binding it;
    empty iff :func:`embedding_satisfies_morphism` holds.  Builds the full
    use map instead of short-circuiting, so it is for diagnostics — the
    sanitizer's ``S208`` details — not for hot join paths.
    """
    vertex_iso = vertex_strategy is MatchStrategy.ISOMORPHISM
    edge_iso = edge_strategy is MatchStrategy.ISOMORPHISM
    if not vertex_iso and not edge_iso:
        return []
    vertex_uses = {}
    edge_uses = {}
    for variable in meta.variables:
        column = meta.entry_column(variable)
        kind = meta.entry_kind(variable)
        if kind == "v" and vertex_iso:
            vertex_uses.setdefault(embedding.id_at(column).value, []).append(
                variable
            )
        elif kind == "e" and edge_iso:
            edge_uses.setdefault(embedding.id_at(column).value, []).append(
                variable
            )
        elif kind == "p":
            for index, gid in enumerate(embedding.path_at(column)):
                position = "%s[%d]" % (variable, index)
                if index % 2 == 0:
                    if edge_iso:
                        edge_uses.setdefault(gid.value, []).append(position)
                elif vertex_iso:
                    vertex_uses.setdefault(gid.value, []).append(position)
    violations = []
    for label, uses in (("vertex", vertex_uses), ("edge", edge_uses)):
        for value, users in sorted(uses.items()):
            if len(users) > 1:
                violations.append(
                    "%s %d bound by %s under %s isomorphism"
                    % (label, value, ", ".join(users), label)
                )
    return violations

"""The embedding data structure (paper §3.3), byte-for-byte.

An embedding is three byte arrays:

* ``id_data`` — fixed-width entries (1 flag byte + 8-byte value).  Flag
  ``ID`` marks a vertex/edge identifier; flag ``PATH`` marks an offset into
  ``path_data``.  Fixed width makes column access O(1).
* ``path_data`` — per path: a 4-byte element count followed by the ordered
  8-byte identifiers of the path's alternating edge/vertex elements
  (``via`` in Table 2b — endpoints excluded).
* ``prop_data`` — per property: a 2-byte byte-length followed by the
  serialized :class:`~repro.epgm.PropertyValue`.  Access walks length
  fields, exactly as the paper describes.

Merging two embeddings (a join) is append-only for identifiers and
properties; path offsets of the right side are rewritten by the left
side's ``path_data`` length.

The mapping from query variables and property keys to entry indices lives
outside the embedding, in :class:`EmbeddingMetaData` — "utilized and
updated by the query operators but not part of the embedding" (§3.3).
"""

import struct
from typing import Iterator, List, Tuple

from repro.epgm import GradoopId, PropertyValue
from repro.epgm.property_value import NULL_VALUE

FLAG_ID: int = 0
FLAG_PATH: int = 1

_ENTRY = struct.Struct(">BQ")
_PATH_LEN = struct.Struct(">I")
_ID = struct.Struct(">Q")
_PROP_LEN = struct.Struct(">H")

ENTRY_WIDTH: int = _ENTRY.size  # 9 bytes
PATH_COUNT_WIDTH: int = _PATH_LEN.size  # 4 bytes
PATH_ID_WIDTH: int = _ID.size  # 8 bytes
PROP_LEN_WIDTH: int = _PROP_LEN.size  # 2 bytes


def iter_property_records(prop_data: bytes) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, length)`` per length-prefixed property record.

    Walks the raw buffer without deserializing the payloads.  Raises
    :class:`ValueError` when a length field is truncated or overruns the
    buffer — the walk cannot continue past corrupt bytes.
    """
    cursor = 0
    while cursor < len(prop_data):
        if cursor + PROP_LEN_WIDTH > len(prop_data):
            raise ValueError(
                "truncated property length field at offset %d" % cursor
            )
        (length,) = _PROP_LEN.unpack_from(prop_data, cursor)
        start = cursor + PROP_LEN_WIDTH
        if start + length > len(prop_data):
            raise ValueError(
                "property record at offset %d declares %d payload bytes but "
                "prop_data ends at %d" % (cursor, length, len(prop_data))
            )
        yield start, length
        cursor = start + length


class Embedding:
    """An immutable row of the embeddings relation."""

    __slots__ = ("id_data", "path_data", "prop_data")

    def __init__(self, id_data: bytes = b"", path_data: bytes = b"", prop_data: bytes = b"") -> None:
        self.id_data = bytes(id_data)
        self.path_data = bytes(path_data)
        self.prop_data = bytes(prop_data)

    # Reading ------------------------------------------------------------------

    @property
    def column_count(self) -> int:
        return len(self.id_data) // ENTRY_WIDTH

    def flag_at(self, column: int) -> int:
        return self.id_data[column * ENTRY_WIDTH]

    def _value_at(self, column: int) -> int:
        flag, value = _ENTRY.unpack_from(self.id_data, column * ENTRY_WIDTH)
        return flag, value

    def id_at(self, column):
        """The GradoopId stored at ``column`` (must be an ID entry)."""
        flag, value = self._value_at(column)
        if flag != FLAG_ID:
            raise ValueError("column %d holds a path, not an id" % column)
        return GradoopId(value)

    def raw_id_at(self, column):
        """Like :meth:`id_at` but returns the bare int (hot-path helper)."""
        flag, value = self._value_at(column)
        if flag != FLAG_ID:
            raise ValueError("column %d holds a path, not an id" % column)
        return value

    def entries(self):
        """All ``(flag, value)`` pairs, uninterpreted (sanitizer walks)."""
        return [
            self._value_at(column) for column in range(self.column_count)
        ]

    def entry_bytes(self, column: int) -> bytes:
        """The raw 9-byte entry at ``column`` (byte-for-byte comparisons)."""
        start = column * ENTRY_WIDTH
        return self.id_data[start : start + ENTRY_WIDTH]

    def path_at(self, column):
        """The identifier list of the path stored at ``column``."""
        flag, offset = self._value_at(column)
        if flag != FLAG_PATH:
            raise ValueError("column %d holds an id, not a path" % column)
        (count,) = _PATH_LEN.unpack_from(self.path_data, offset)
        cursor = offset + _PATH_LEN.size
        ids = []
        for _ in range(count):
            (value,) = _ID.unpack_from(self.path_data, cursor)
            ids.append(GradoopId(value))
            cursor += _ID.size
        return ids

    def raw_path_at(self, column):
        """Like :meth:`path_at` but bare ints (hot-path helper)."""
        flag, offset = self._value_at(column)
        if flag != FLAG_PATH:
            raise ValueError("column %d holds an id, not a path" % column)
        (count,) = _PATH_LEN.unpack_from(self.path_data, offset)
        start = offset + _PATH_LEN.size
        return [
            _ID.unpack_from(self.path_data, start + index * _ID.size)[0]
            for index in range(count)
        ]

    @property
    def property_count(self) -> int:
        count = 0
        cursor = 0
        data = self.prop_data
        while cursor < len(data):
            (length,) = _PROP_LEN.unpack_from(data, cursor)
            cursor += _PROP_LEN.size + length
            count += 1
        return count

    def property_at(self, index):
        """The index-th property value; walks length fields (O(index))."""
        cursor = 0
        data = self.prop_data
        for _ in range(index):
            if cursor >= len(data):
                raise IndexError("property index %d out of range" % index)
            (length,) = _PROP_LEN.unpack_from(data, cursor)
            cursor += _PROP_LEN.size + length
        if cursor >= len(data):
            raise IndexError("property index %d out of range" % index)
        (length,) = _PROP_LEN.unpack_from(data, cursor)
        start = cursor + _PROP_LEN.size
        value, _ = PropertyValue.from_bytes(data[start : start + length])
        return value

    def properties(self):
        """All property values in index order."""
        values = []
        cursor = 0
        data = self.prop_data
        while cursor < len(data):
            (length,) = _PROP_LEN.unpack_from(data, cursor)
            start = cursor + _PROP_LEN.size
            value, _ = PropertyValue.from_bytes(data[start : start + length])
            values.append(value)
            cursor = start + length
        return values

    # Building (returns new embeddings; instances stay immutable) -----------------

    def append_id(self, gradoop_id):
        entry = _ENTRY.pack(FLAG_ID, gradoop_id.value)
        return Embedding(self.id_data + entry, self.path_data, self.prop_data)

    def append_properties(self, values):
        chunks = [self.prop_data]
        for value in values:
            if not isinstance(value, PropertyValue):
                value = PropertyValue(value)
            payload = value.to_bytes()
            chunks.append(_PROP_LEN.pack(len(payload)))
            chunks.append(payload)
        return Embedding(self.id_data, self.path_data, b"".join(chunks))

    def append_path(self, ids):
        """Append a PATH column holding ``ids`` (list of GradoopId or int)."""
        offset = len(self.path_data)
        entry = _ENTRY.pack(FLAG_PATH, offset)
        chunks = [self.path_data, _PATH_LEN.pack(len(ids))]
        for gid in ids:
            value = gid.value if isinstance(gid, GradoopId) else gid
            chunks.append(_ID.pack(value))
        return Embedding(self.id_data + entry, b"".join(chunks), self.prop_data)

    def merge(self, other, drop_columns=frozenset()):
        """Join-merge: append ``other``'s entries except ``drop_columns``.

        Path offsets in kept PATH entries are rewritten relative to the
        concatenated ``path_data``; identifiers and properties are appended
        as-is (the append-only property of §3.3).
        """
        base_offset = len(self.path_data)
        id_chunks = [self.id_data]
        for column in range(other.column_count):
            if column in drop_columns:
                continue
            flag, value = other._value_at(column)
            if flag == FLAG_PATH:
                value += base_offset
            id_chunks.append(_ENTRY.pack(flag, value))
        return Embedding(
            b"".join(id_chunks),
            self.path_data + other.path_data,
            self.prop_data + other.prop_data,
        )

    def project_properties(self, keep_indices):
        """Keep only the properties at ``keep_indices`` (in the given order)."""
        values = self.properties()
        kept = [values[index] for index in keep_indices]
        return Embedding(self.id_data, self.path_data).append_properties(kept)

    # Infrastructure ----------------------------------------------------------------

    @classmethod
    def of_ids(cls, *gradoop_ids):
        return cls(
            b"".join(_ENTRY.pack(FLAG_ID, gid.value) for gid in gradoop_ids)
        )

    def serialized_size(self) -> int:
        return len(self.id_data) + len(self.path_data) + len(self.prop_data)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Embedding)
            and self.id_data == other.id_data
            and self.path_data == other.path_data
            and self.prop_data == other.prop_data
        )

    def __hash__(self) -> int:
        return hash((self.id_data, self.path_data, self.prop_data))

    def __repr__(self) -> str:
        columns = []
        for column in range(self.column_count):
            flag, value = self._value_at(column)
            if flag == FLAG_ID:
                columns.append(str(value))
            else:
                columns.append(
                    "path[%s]" % ",".join(str(g.value) for g in self.path_at(column))
                )
        return "Embedding(%s | %d props)" % (", ".join(columns), self.property_count)


class EmbeddingMetaData:
    """Variable/property → entry-index mapping (kept outside the embedding).

    ``entries`` maps a query variable to ``(column, kind)`` with kind one
    of ``'v'`` (vertex), ``'e'`` (edge), ``'p'`` (variable-length path);
    ``properties`` maps ``(variable, key)`` to a property index.
    """

    def __init__(self, entries=None, properties=None):
        self._entries = dict(entries or {})
        self._properties = dict(properties or {})

    # Construction ---------------------------------------------------------------

    def with_entry(self, variable: str, kind: str) -> "EmbeddingMetaData":
        if variable in self._entries:
            raise ValueError("variable %r already mapped" % variable)
        if kind not in ("v", "e", "p"):
            raise ValueError("unknown entry kind %r" % kind)
        entries = dict(self._entries)
        entries[variable] = (len(self._entries), kind)
        return EmbeddingMetaData(entries, self._properties)

    def with_property(self, variable: str, key: str) -> "EmbeddingMetaData":
        if (variable, key) in self._properties:
            raise ValueError("property %s.%s already mapped" % (variable, key))
        properties = dict(self._properties)
        properties[(variable, key)] = len(self._properties)
        return EmbeddingMetaData(self._entries, properties)

    @staticmethod
    def combine(left, right, join_variables):
        """Meta data of ``left.merge(right, drop)`` dropping the join columns.

        Returns ``(meta, drop_columns)`` where ``drop_columns`` is the set
        of right-side columns to drop in :meth:`Embedding.merge`.
        """
        drop_columns = set()
        for variable in join_variables:
            drop_columns.add(right.entry_column(variable))
        entries = dict(left._entries)
        offset = len(left._entries)
        for variable, (column, kind) in sorted(
            right._entries.items(), key=lambda item: item[1][0]
        ):
            if column in drop_columns:
                continue
            if variable in entries:
                raise ValueError(
                    "variable %r bound on both join sides but not joined" % variable
                )
            entries[variable] = (offset, kind)
            offset += 1
        properties = dict(left._properties)
        prop_offset = len(left._properties)
        for (variable, key), index in sorted(
            right._properties.items(), key=lambda item: item[1]
        ):
            # prop_data is appended wholesale, so right indices shift by the
            # left side's property count; a pair loaded on both sides keeps
            # the left mapping (the right copy becomes dead bytes).
            properties.setdefault((variable, key), prop_offset + index)
        meta = EmbeddingMetaData(entries, properties)
        return meta, drop_columns

    # Lookup ---------------------------------------------------------------------

    @property
    def variables(self) -> List[str]:
        return [
            variable
            for variable, _ in sorted(
                self._entries.items(), key=lambda item: item[1][0]
            )
        ]

    @property
    def column_count(self):
        return len(self._entries)

    @property
    def property_count(self):
        return len(self._properties)

    def has_variable(self, variable: str) -> bool:
        return variable in self._entries

    def entry_column(self, variable: str) -> int:
        try:
            return self._entries[variable][0]
        except KeyError:
            raise KeyError("variable %r not in embedding" % variable) from None

    def entry_kind(self, variable: str) -> str:
        try:
            return self._entries[variable][1]
        except KeyError:
            raise KeyError("variable %r not in embedding" % variable) from None

    def has_property(self, variable: str, key: str) -> bool:
        return (variable, key) in self._properties

    def property_index(self, variable: str, key: str) -> int:
        try:
            return self._properties[(variable, key)]
        except KeyError:
            raise KeyError("property %s.%s not in embedding" % (variable, key)) from None

    def property_entries(self) -> List[Tuple[str, str]]:
        """All ``(variable, key)`` pairs in index order."""
        return [
            pair
            for pair, _ in sorted(self._properties.items(), key=lambda item: item[1])
        ]

    def property_keys_of(self, variable: str) -> List[str]:
        return [key for (var, key) in self.property_entries() if var == variable]

    # Compiled accessors ----------------------------------------------------------
    #
    # The §3.3 layout gives FLAG_ID entries a fixed byte offset
    # (column * ENTRY_WIDTH + 1), so once the meta data is known the
    # per-record flag walk collapses into a single precompiled
    # ``struct.Struct.unpack_from``.  These factories validate the entry
    # kind once at compile time — per operator, not per record — and hand
    # back closures for the hot loops.  Sanitized execution re-validates
    # the flags per record at every operator boundary.

    def id_reader(self, variable):
        """``embedding -> bare int id`` at ``variable``'s column.

        Compile-time checked to be an id ('v'/'e') entry; the closure
        skips the runtime flag check the meta data already guarantees.
        """
        if self.entry_kind(variable) == "p":
            raise ValueError(
                "variable %r holds a path, not an id" % (variable,)
            )
        offset = self.entry_column(variable) * ENTRY_WIDTH + 1
        unpack_from = _ID.unpack_from

        def read_id(embedding):
            return unpack_from(embedding.id_data, offset)[0]

        return read_id

    def join_key_reader(self, variables):
        """``embedding -> join key`` over one or more id variables.

        A single variable yields the bare int (its hash matches the
        id-based data placement — tuple hashes would not); several yield
        the tuple of ints.
        """
        readers = tuple(self.id_reader(variable) for variable in variables)
        if len(readers) == 1:
            return readers[0]

        def read_key(embedding):
            return tuple(read(embedding) for read in readers)

        return read_key

    def property_reader(self, variable, key):
        """``embedding -> PropertyValue`` for one mapped property.

        The length-field walk survives (prop records are variable width)
        but the index, structs and deserializer are bound once.
        """
        index = self.property_index(variable, key)
        unpack_from = _PROP_LEN.unpack_from
        width = PROP_LEN_WIDTH
        from_bytes = PropertyValue.from_bytes

        def read_property(embedding):
            data = embedding.prop_data
            cursor = 0
            for _ in range(index):
                cursor += width + unpack_from(data, cursor)[0]
            (length,) = unpack_from(data, cursor)
            start = cursor + width
            return from_bytes(data[start:start + length])[0]

        return read_property

    def compiled_bindings(self):
        """``embedding -> CompiledEmbeddingBindings`` factory.

        Pre-computes one accessor per mapped property and id column so
        CNF evaluation over embeddings stops re-walking the byte layout
        per atom.  The closures are pure readers, so one factory may be
        shared by concurrent executions of a cached plan.
        """
        property_readers = {
            pair: self.property_reader(*pair)
            for pair in self.property_entries()
        }
        id_readers = {
            variable: self.id_reader(variable)
            for variable in self.variables
            if self.entry_kind(variable) != "p"
        }

        def bind(embedding):
            return CompiledEmbeddingBindings(
                embedding, property_readers, id_readers
            )

        return bind

    def __repr__(self):
        return "EmbeddingMetaData(%r, %r)" % (self._entries, self._properties)


class EmbeddingBindings:
    """Adapter exposing an embedding to the CNF evaluator.

    Labels are not materialized in embeddings (label predicates are always
    pushed to the leaf operators where the element is at hand), so
    :meth:`label` answering is unsupported here by design.
    """

    __slots__ = ("embedding", "meta")

    def __init__(self, embedding, meta):
        self.embedding = embedding
        self.meta = meta

    def property_value(self, variable, key):
        if not self.meta.has_property(variable, key):
            return NULL_VALUE
        return self.embedding.property_at(self.meta.property_index(variable, key))

    def label(self, variable):
        raise KeyError(
            "label of %r is not available after the leaf operators" % variable
        )

    def element_id(self, variable):
        return self.embedding.id_at(self.meta.entry_column(variable))


class CompiledEmbeddingBindings:
    """:class:`EmbeddingBindings` semantics over precompiled accessors.

    Built by :meth:`EmbeddingMetaData.compiled_bindings`; property and id
    lookups dispatch through per-(variable, key) closures computed once
    per operator instead of walking the meta data per record.
    """

    __slots__ = ("embedding", "_property_readers", "_id_readers")

    def __init__(self, embedding, property_readers, id_readers):
        self.embedding = embedding
        self._property_readers = property_readers
        self._id_readers = id_readers

    def property_value(self, variable, key):
        reader = self._property_readers.get((variable, key))
        if reader is None:
            return NULL_VALUE
        return reader(self.embedding)

    def label(self, variable):
        raise KeyError(
            "label of %r is not available after the leaf operators" % variable
        )

    def element_id(self, variable):
        reader = self._id_readers.get(variable)
        if reader is None:
            raise KeyError("variable %r not in embedding" % variable)
        return GradoopId(reader(self.embedding))


def compile_merge(left_meta, right_meta, drop_columns):
    """``(left, right) -> merged`` closure for a fixed join shape.

    When the right side has no PATH columns (the overwhelmingly common
    join shape), the kept right entries are contiguous byte ranges whose
    content merges unchanged — the closure concatenates pre-computed
    slices instead of unpacking and repacking every entry.  PATH-bearing
    right sides fall back to the generic :meth:`Embedding.merge` (their
    offsets must be rewritten).  Both paths are byte-identical.
    """
    drop = frozenset(drop_columns)
    if any(kind == "p" for _, kind in right_meta._entries.values()):
        def merge(left, right):
            return left.merge(right, drop)

        return merge

    ranges = []
    for column in range(right_meta.column_count):
        if column in drop:
            continue
        start = column * ENTRY_WIDTH
        if ranges and ranges[-1][1] == start:
            ranges[-1] = (ranges[-1][0], start + ENTRY_WIDTH)
        else:
            ranges.append((start, start + ENTRY_WIDTH))

    if not ranges:
        def merge(left, right):
            return Embedding(
                left.id_data,
                left.path_data + right.path_data,
                left.prop_data + right.prop_data,
            )

    elif len(ranges) == 1:
        (start, stop) = ranges[0]

        def merge(left, right):
            return Embedding(
                left.id_data + right.id_data[start:stop],
                left.path_data + right.path_data,
                left.prop_data + right.prop_data,
            )

    else:
        spans = tuple(ranges)

        def merge(left, right):
            rid = right.id_data
            return Embedding(
                left.id_data + b"".join(rid[a:b] for a, b in spans),
                left.path_data + right.path_data,
                left.prop_data + right.prop_data,
            )

    return merge


def compile_property_projector(keep_indices):
    """``embedding -> projected embedding`` keeping raw property records.

    Projection slices the length-prefixed records straight out of
    ``prop_data`` — trivially byte-identical, and it skips the
    deserialize/re-serialize round trip of
    :meth:`Embedding.project_properties`.
    """
    keep = tuple(keep_indices)
    unpack_from = _PROP_LEN.unpack_from
    width = PROP_LEN_WIDTH

    def project(embedding):
        data = embedding.prop_data
        spans = []
        cursor = 0
        length = len(data)
        while cursor < length:
            end = cursor + width + unpack_from(data, cursor)[0]
            spans.append((cursor, end))
            cursor = end
        return Embedding(
            embedding.id_data,
            embedding.path_data,
            b"".join(data[spans[index][0]:spans[index][1]] for index in keep),
        )

    return project


class ElementBindings:
    """Adapter exposing a single vertex/edge to the CNF evaluator."""

    __slots__ = ("variable", "element")

    def __init__(self, variable, element):
        self.variable = variable
        self.element = element

    def property_value(self, variable, key):
        if variable != self.variable:
            raise KeyError("variable %r not bound at this leaf" % variable)
        return self.element.get_property(key)

    def label(self, variable):
        if variable != self.variable:
            raise KeyError("variable %r not bound at this leaf" % variable)
        return self.element.label

    def element_id(self, variable):
        if variable != self.variable:
            raise KeyError("variable %r not bound at this leaf" % variable)
        return self.element.id

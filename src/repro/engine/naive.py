"""A brute-force backtracking pattern matcher.

Serves two purposes:

* **ground truth** — integration tests cross-check the dataflow engine's
  results against this independent implementation on small graphs;
* **baseline** — the "no dataflow, no planner" single-machine comparator
  used in ablation benchmarks.

Semantics are identical to the engine: configurable vertex/edge morphism
strategies, per-hop predicates on variable-length edges, Cypher ternary
predicate logic.
"""

from repro.cypher.predicates import evaluate_cnf
from repro.cypher.query_graph import QueryHandler

from .embedding import ElementBindings
from .morphism import (
    DEFAULT_EDGE_STRATEGY,
    DEFAULT_VERTEX_STRATEGY,
    MatchStrategy,
    check_distinct,
)


class _NaiveBindings:
    """CNF bindings over a plain variable->element dict."""

    def __init__(self, elements):
        self.elements = elements

    def property_value(self, variable, key):
        return self.elements[variable].get_property(key)

    def label(self, variable):
        return self.elements[variable].label

    def element_id(self, variable):
        return self.elements[variable].id


class NaiveMatcher:
    """Enumerates all embeddings by backtracking."""

    def __init__(self, graph, vertex_strategy=None, edge_strategy=None):
        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self.vertices = {v.id: v for v in graph.collect_vertices()}
        self.edges = {e.id: e for e in graph.collect_edges()}
        self.out_edges = {}
        for edge in self.edges.values():
            self.out_edges.setdefault(edge.source_id, []).append(edge)

    # ----------------------------------------------------------------------

    def match(self, query):
        """All matches as canonical rows (see :func:`canonical_row`)."""
        handler = query if isinstance(query, QueryHandler) else QueryHandler(query)
        results = []
        self._recurse(handler, list(handler.edges.values()), {}, {}, {}, results)
        return results

    def count(self, query):
        return len(self.match(query))

    # Backtracking ------------------------------------------------------------

    def _vertex_ok(self, handler, variable, vertex):
        return evaluate_cnf(
            handler.vertices[variable].predicates, ElementBindings(variable, vertex)
        )

    def _edge_ok(self, handler, variable, edge):
        return evaluate_cnf(
            handler.edges[variable].predicates, ElementBindings(variable, edge)
        )

    def _recurse(self, handler, pending, vertex_bind, edge_bind, path_bind, results):
        if not pending:
            self._finalize(handler, vertex_bind, edge_bind, path_bind, results)
            return
        edge = pending[0]
        rest = pending[1:]
        if edge.is_variable_length:
            self._match_paths(handler, edge, rest, vertex_bind, edge_bind, path_bind, results)
        else:
            self._match_edge(handler, edge, rest, vertex_bind, edge_bind, path_bind, results)

    def _candidate_sources(self, handler, variable, vertex_bind):
        if variable in vertex_bind:
            return [vertex_bind[variable]]
        return [
            vid
            for vid, vertex in self.vertices.items()
            if self._vertex_ok(handler, variable, vertex)
        ]

    def _match_edge(self, handler, edge, rest, vertex_bind, edge_bind, path_bind, results):
        for data_edge in self.edges.values():
            if not self._edge_ok(handler, edge.variable, data_edge):
                continue
            orientations = [(data_edge.source_id, data_edge.target_id)]
            if edge.undirected and data_edge.source_id != data_edge.target_id:
                orientations.append((data_edge.target_id, data_edge.source_id))
            for source_id, target_id in orientations:
                new_vertex_bind = dict(vertex_bind)
                if not self._bind_vertex(handler, new_vertex_bind, edge.source, source_id):
                    continue
                if not self._bind_vertex(handler, new_vertex_bind, edge.target, target_id):
                    continue
                new_edge_bind = dict(edge_bind)
                new_edge_bind[edge.variable] = data_edge.id
                self._recurse(
                    handler, rest, new_vertex_bind, new_edge_bind, path_bind, results
                )

    def _bind_vertex(self, handler, vertex_bind, variable, vertex_id):
        if variable in vertex_bind:
            return vertex_bind[variable] == vertex_id
        if not self._vertex_ok(handler, variable, self.vertices[vertex_id]):
            return False
        vertex_bind[variable] = vertex_id
        return True

    def _match_paths(self, handler, edge, rest, vertex_bind, edge_bind, path_bind, results):
        sources = self._candidate_sources(handler, edge.source, vertex_bind)
        for source_id in sources:
            for via, end_id in self._enumerate_paths(handler, edge, source_id):
                new_vertex_bind = dict(vertex_bind)
                if not self._bind_vertex(handler, new_vertex_bind, edge.source, source_id):
                    continue
                if not self._bind_vertex(handler, new_vertex_bind, edge.target, end_id):
                    continue
                new_path_bind = dict(path_bind)
                new_path_bind[edge.variable] = tuple(gid.value for gid in via)
                self._recurse(
                    handler, rest, new_vertex_bind, edge_bind, new_path_bind, results
                )

    def _enumerate_paths(self, handler, edge, source_id):
        """All (via, end) pairs for paths of length lower..upper.

        ``via`` is the alternating [e1, v1, e2, ..., ek] identifier list
        (endpoints excluded).  HOMO semantics may revisit elements; the
        search is still finite because the hop count is bounded.
        """
        paths = []
        if edge.lower == 0:
            paths.append(((), source_id))

        def dfs(current, via, depth):
            if depth >= edge.upper:
                return
            neighbours = list(self.out_edges.get(current, []))
            if edge.undirected:
                neighbours = [
                    e
                    for e in self.edges.values()
                    if e.source_id == current or e.target_id == current
                ]
            for data_edge in neighbours:
                if not self._edge_ok(handler, edge.variable, data_edge):
                    continue
                if edge.undirected and data_edge.target_id == current:
                    next_vertex = data_edge.source_id
                elif data_edge.source_id == current:
                    next_vertex = data_edge.target_id
                else:
                    next_vertex = data_edge.source_id
                new_via = via + ((current,) if via else ()) + (data_edge.id,)
                if depth + 1 >= max(edge.lower, 1):
                    paths.append((new_via, next_vertex))
                dfs(next_vertex, new_via, depth + 1)

        dfs(source_id, (), 0)
        return paths

    # Finalization ---------------------------------------------------------------

    def _finalize(self, handler, vertex_bind, edge_bind, path_bind, results):
        # isolated vertices that no edge bound
        unbound = [v for v in handler.vertices if v not in vertex_bind]
        if unbound:
            variable = unbound[0]
            for vid, vertex in self.vertices.items():
                if self._vertex_ok(handler, variable, vertex):
                    extended = dict(vertex_bind)
                    extended[variable] = vid
                    self._finalize(handler, extended, edge_bind, path_bind, results)
            return
        if not self._morphism_ok(vertex_bind, edge_bind, path_bind):
            return
        if not handler.global_predicates.is_trivial:
            elements = {v: self.vertices[i] for v, i in vertex_bind.items()}
            elements.update({e: self.edges[i] for e, i in edge_bind.items()})
            if not evaluate_cnf(
                handler.global_predicates, _NaiveBindings(elements)
            ):
                return
        results.append(canonical_row(vertex_bind, edge_bind, path_bind))

    def _morphism_ok(self, vertex_bind, edge_bind, path_bind):
        if self.vertex_strategy is MatchStrategy.ISOMORPHISM:
            vertex_ids = [vid.value for vid in vertex_bind.values()]
            for via in path_bind.values():
                vertex_ids.extend(via[i] for i in range(1, len(via), 2))
            if not check_distinct(vertex_ids):
                return False
        if self.edge_strategy is MatchStrategy.ISOMORPHISM:
            edge_ids = [eid.value for eid in edge_bind.values()]
            for via in path_bind.values():
                edge_ids.extend(via[i] for i in range(0, len(via), 2))
            if not check_distinct(edge_ids):
                return False
        return True


def canonical_row(vertex_bind, edge_bind, path_bind):
    """A hashable, order-independent representation of one match."""
    parts = []
    for variable, vid in vertex_bind.items():
        parts.append((variable, vid.value))
    for variable, eid in edge_bind.items():
        parts.append((variable, eid.value))
    for variable, via in path_bind.items():
        parts.append((variable, tuple(via)))
    return tuple(sorted(parts))


def canonical_rows_from_embeddings(embeddings, meta):
    """Engine results in the same canonical form (for cross-checking)."""
    rows = []
    for embedding in embeddings:
        parts = []
        for variable in meta.variables:
            kind = meta.entry_kind(variable)
            column = meta.entry_column(variable)
            if kind == "p":
                parts.append(
                    (variable, tuple(g.value for g in embedding.path_at(column)))
                )
            else:
                parts.append((variable, embedding.raw_id_at(column)))
        rows.append(tuple(sorted(parts)))
    return rows

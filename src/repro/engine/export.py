"""Export query results to numpy arrays for downstream analytics.

The paper positions pattern matching inside *analytical programs* —
matches feed further computation.  This module hands embeddings to the
scientific Python stack as columnar arrays.
"""

import numpy


def embeddings_to_arrays(embeddings, meta):
    """Columnar view of an embedding relation.

    Returns a dict with one ``numpy`` array per entry column (``uint64``
    element ids; PATH columns become ``object`` arrays of id lists) and
    one ``object`` array per projected property (raw Python values, None
    for NULL).

    .. code-block:: python

        embeddings, meta = runner.execute_embeddings(query)
        columns = embeddings_to_arrays(embeddings, meta)
        columns["p1"]          # array of vertex ids
        columns["p1.name"]     # array of property values
    """
    count = len(embeddings)
    columns = {}
    for variable in meta.variables:
        column = meta.entry_column(variable)
        if meta.entry_kind(variable) == "p":
            data = numpy.empty(count, dtype=object)
            for index, embedding in enumerate(embeddings):
                data[index] = [g.value for g in embedding.path_at(column)]
        else:
            data = numpy.fromiter(
                (embedding.raw_id_at(column) for embedding in embeddings),
                dtype=numpy.uint64,
                count=count,
            )
        columns[variable] = data
    for variable, key in meta.property_entries():
        prop_index = meta.property_index(variable, key)
        data = numpy.empty(count, dtype=object)
        for index, embedding in enumerate(embeddings):
            data[index] = embedding.property_at(prop_index).raw()
        columns["%s.%s" % (variable, key)] = data
    return columns


def result_table(runner, query, parameters=None):
    """One-call helper: execute and export to arrays."""
    embeddings, meta = runner.execute_embeddings(query, parameters)
    return embeddings_to_arrays(embeddings, meta)

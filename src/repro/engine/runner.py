"""CypherRunner: parse → plan → execute → post-process.

The entry point behind :meth:`LogicalGraph.cypher` (paper §3): compiles a
query string into a physical plan via the greedy planner, runs it on the
dataflow substrate, and turns the resulting embeddings into the
:class:`~repro.epgm.GraphCollection` the EPGM operator contract requires
(Definition 2.4).  Variable bindings are attached as properties on the
result graph heads so arbitrary post-processing remains possible (§2.3).
"""

import itertools

from repro.analysis.diagnostics import QueryLintError
from repro.analysis.linter import lint_query
from repro.cache import LRUCache
from repro.cypher.ast import FunctionCall, PropertyAccess, VariableRef
from repro.cypher.errors import CypherSemanticError
from repro.cypher.query_graph import QueryHandler
from repro.epgm import GraphCollection, GraphHead, PropertyValue

from .embedding import EmbeddingBindings
from .morphism import DEFAULT_EDGE_STRATEGY, DEFAULT_VERTEX_STRATEGY
from .planning import GreedyPlanner
from .statistics import GraphStatistics

#: default bound of a runner-private plan cache; the serving layer passes
#: a larger shared cache instead
DEFAULT_PLAN_CACHE_SIZE = 64

_graph_tokens = itertools.count()


def _graph_cache_token(graph):
    """A process-unique, lifetime-stable identity for ``graph``.

    ``id()`` alone can be recycled after garbage collection, which would
    let a dead graph's cached plans leak into a new graph allocated at the
    same address; a monotone token attached on first use cannot collide.
    """
    token = getattr(graph, "_plan_cache_token", None)
    if token is None:
        token = next(_graph_tokens)
        graph._plan_cache_token = token
    return token


class CypherRunner:
    """Executes Cypher pattern-matching queries against one logical graph."""

    def __init__(
        self,
        graph,
        vertex_strategy=None,
        edge_strategy=None,
        statistics=None,
        planner_cls=GreedyPlanner,
        lint=True,
        verify_plans=False,
        sanitize=False,
        plan_cache=None,
        fused=None,
        columnar=None,
        prune=False,
    ):
        self.graph = graph
        #: liveness-driven dead-byte pruning: with ``prune=True`` every
        #: compiled plan is rewritten by
        #: :func:`~repro.engine.planning.prune_plan` so property bytes the
        #: RETURN clause never reads are dropped at the earliest operator
        #: liveness allows.  Result-equivalent by construction (and
        #: differential-tested); part of the plan-cache key.
        self.prune = prune
        #: batched-fusion override for this runner's executions: ``None``
        #: inherits the environment default, ``False`` forces per-record.
        #: Sanitized execution is always per-record regardless (the
        #: sanitizer's per-boundary wrappers must see every intermediate).
        self.fused = fused
        #: columnar chunk-kernel override, same contract as ``fused`` —
        #: ``None`` inherits the environment default, and sanitized runs
        #: are per-record (so never columnar) by construction
        self.columnar = columnar
        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self._statistics = statistics
        self.planner_cls = planner_cls
        self.lint_enabled = lint
        self.verify_plans = verify_plans
        #: warnings from the most recent compile (errors raise instead)
        self.last_diagnostics = []
        #: the EmbeddingSanitizer of the most recent compile, or None
        self.last_sanitizer = None
        #: bounded LRU of compiled plans; pass a shared
        #: :class:`repro.cache.LRUCache` to pool plans across runners
        #: (the query service does)
        self._plan_cache = (
            plan_cache
            if plan_cache is not None
            else LRUCache(DEFAULT_PLAN_CACHE_SIZE)
        )
        self.sanitize = False
        self.set_sanitize(sanitize)

    @property
    def plan_cache(self):
        return self._plan_cache

    def set_sanitize(self, sanitize):
        """Switch sanitized (instrumented) execution on or off.

        ``sanitize`` is ``False`` (plain execution, the default),
        ``True``/``'raise'`` (validate every embedding at every operator
        boundary and raise :class:`~repro.analysis.SanitizerError` on the
        first finding), ``'collect'`` (validate but accumulate findings
        on ``last_sanitizer.diagnostics``) or ``'sample'`` (validate every
        Nth event only and raise — the cheap tripwire a plan can drop to
        once :meth:`flowcheck` has statically proven its layout).
        Instrumentation is baked into compiled plans; the plan-cache key
        includes the mode, so toggling switches to a different cache slice
        instead of clearing a cache that may be shared with other runners.
        """
        if sanitize not in (False, True, "raise", "collect", "sample"):
            raise ValueError(
                "sanitize must be False, True, 'raise', 'collect' or "
                "'sample', not %r" % (sanitize,)
            )
        self.sanitize = sanitize
        self.last_sanitizer = None

    @property
    def statistics(self):
        if self._statistics is None:
            self._statistics = GraphStatistics.from_graph(self.graph)
        return self._statistics

    # Compilation -------------------------------------------------------------

    def lint(self, query):
        """Static diagnostics for ``query`` against this graph's statistics.

        Returns the sorted :class:`~repro.analysis.Diagnostic` list without
        raising; callers decide how to treat errors.
        """
        return lint_query(query, statistics=self.statistics)

    def compile(self, query, parameters=None):
        """``(QueryHandler, root physical operator)`` for ``query``.

        With ``lint=True`` (the default) the query is linted first:
        blocking diagnostics (binding errors the compiler would reject
        anyway) raise :class:`QueryLintError` before any planning happens;
        everything else — including unsatisfiable-but-legal predicates — is
        kept on ``last_diagnostics``.  With ``verify_plans=True`` the
        planned operator tree must additionally pass the structural
        :func:`~repro.analysis.verify_plan` checks.

        Compiled plans live in a bounded LRU cache keyed on the graph, the
        statistics version, the query text and parameter values, the
        morphism strategies, the planner and the instrumentation mode —
        re-running the same query skips parsing, linting and planning,
        while a statistics bump (graph mutation) makes every stale plan
        unreachable.
        """
        cache_key = None
        if isinstance(query, str):
            cache_key = self.plan_cache_key(query, parameters)
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                handler, root, self.last_diagnostics, self.last_sanitizer = (
                    cached
                )
                return handler, root
        diagnostics = []
        if self.lint_enabled and isinstance(query, str):
            diagnostics = self.lint(query)
            if any(diagnostic.is_blocking for diagnostic in diagnostics):
                raise QueryLintError(diagnostics, query_text=query)
        self.last_diagnostics = diagnostics
        if isinstance(query, QueryHandler):
            handler = query
        else:
            handler = QueryHandler(query, parameters=parameters)
        planner = self.planner_cls(
            self.graph,
            handler,
            self.statistics,
            vertex_strategy=self.vertex_strategy,
            edge_strategy=self.edge_strategy,
        )
        root = planner.plan()
        if self.prune:
            # Lazy for the same reason as the verifier import below.
            from .planning import prune_plan

            root = prune_plan(
                root,
                handler=handler,
                vertex_strategy=self.vertex_strategy,
                edge_strategy=self.edge_strategy,
            )
        if self.verify_plans:
            # imported lazily: the verifier imports the operator modules,
            # which are mid-initialization when this module first loads
            from repro.analysis.verifier import verify_plan

            verify_plan(
                root,
                handler=handler,
                vertex_strategy=self.vertex_strategy,
                edge_strategy=self.edge_strategy,
            )
        sanitizer = None
        if self.sanitize:
            # Lazy for the same reason as the verifier import above.
            from repro.analysis.sanitizer import (
                DEFAULT_SAMPLE_EVERY,
                EmbeddingSanitizer,
            )

            sanitizer = EmbeddingSanitizer(
                vertex_strategy=self.vertex_strategy,
                edge_strategy=self.edge_strategy,
                mode="collect" if self.sanitize == "collect" else "raise",
                sample_every=(
                    DEFAULT_SAMPLE_EVERY
                    if self.sanitize == "sample"
                    else None
                ),
            ).attach(root)
        self.last_sanitizer = sanitizer
        if cache_key is not None:
            self._plan_cache.put(
                cache_key, (handler, root, diagnostics, sanitizer)
            )
        return handler, root

    def plan_cache_key(self, query, parameters=None):
        """The full cache key of ``query`` under this runner's settings."""
        return (
            "plan",
            _graph_cache_token(self.graph),
            getattr(self.statistics, "version", 0),
            query,
            # repr keeps the key hashable for list/None parameter values
            repr(sorted((parameters or {}).items())),
            self.planner_cls.__name__,
            self.vertex_strategy,
            self.edge_strategy,
            self.sanitize,
            self.verify_plans,
            self.prune,
        )

    def explain(self, query, parameters=None):
        """EXPLAIN output: the physical plan with cardinality estimates."""
        _, root = self.compile(query, parameters)
        return root.explain()

    def explain_analyze(self, query, parameters=None):
        """EXPLAIN ANALYZE: the plan with estimated *and* actual row counts.

        Executes the query (every sub-plan), so use it for diagnostics, not
        on hot paths.
        """
        _, root = self.compile(query, parameters)
        return root.explain(analyze=True)

    def audit_estimates(self, query, parameters=None, max_q_error=None):
        """Cardinality-estimate audit: per-operator q-error for ``query``.

        Executes the compiled plan once (shared dataflow cache) and
        returns an :class:`~repro.analysis.EstimateAudit`; operators whose
        estimate is off by more than ``max_q_error`` carry an ``S211``
        diagnostic.
        """
        from repro.analysis.estimates import (
            DEFAULT_MAX_Q_ERROR,
            audit_estimates,
        )

        _, root = self.compile(query, parameters)
        if max_q_error is None:
            max_q_error = DEFAULT_MAX_Q_ERROR
        return audit_estimates(root, max_q_error=max_q_error)

    def flowcheck(self, query, parameters=None):
        """Statically verify the §3.3 layout flow of ``query``'s plan.

        Compiles (through the plan cache) and abstractly interprets the
        physical plan, returning a :class:`~repro.analysis.FlowReport`.
        A ``proven`` report licenses dropping this runner to
        ``sanitize="sample"`` — or plain execution — for this query: the
        layout contracts the sanitizer would check per-embedding hold by
        construction.
        """
        from repro.analysis.flow import verify_flow

        _, root = self.compile(query, parameters)
        return verify_flow(
            root,
            vertex_strategy=self.vertex_strategy,
            edge_strategy=self.edge_strategy,
        )

    def livecheck(self, query, parameters=None):
        """Backward liveness analysis of ``query``'s plan (``S4xx``).

        Compiles (through the plan cache) and propagates the RETURN
        clause's demand down the physical plan, returning a
        :class:`~repro.analysis.LivenessReport` whose diagnostics name
        every dead column, dead property record and never-read path —
        exactly the bytes :func:`~repro.engine.planning.prune_plan` would
        drop under ``prune=True``.
        """
        from repro.analysis.liveness import verify_liveness

        handler, root = self.compile(query, parameters)
        return verify_liveness(
            root,
            handler,
            vertex_strategy=self.vertex_strategy,
            edge_strategy=self.edge_strategy,
        )

    def certify_cost(self, query, parameters=None):
        """The static :class:`~repro.analysis.CostCertificate` of ``query``.

        Composes per-operator worst-case cardinality and bytes-moved
        bounds from the graph statistics — the artifact the query
        service's admission control consults before executing anything.
        """
        from repro.analysis.costbound import certify_plan

        _, root = self.compile(query, parameters)
        return certify_plan(root, self.statistics)

    def check_shippable(self, query, parameters=None):
        """Shippability report over every UDF in ``query``'s dataflow.

        Builds the compiled plan's dataset DAG (without executing it) and
        classifies every installed callable with the ``P4xx`` analyzer —
        the gate the upcoming multi-process execution requires before
        shipping work to worker processes.  Dataflow nodes are mapped back
        to the query element that compiled them, so findings carry source
        spans.
        """
        from repro.analysis.udfcheck import analyze_dataflow

        _, root = self.compile(query, parameters)
        dataflow_root = root.evaluate().operator
        return analyze_dataflow(
            dataflow_root, spans=self._dataflow_spans(root)
        )

    def _dataflow_spans(self, root):
        """``id(dataflow node) -> Span`` for the plan rooted at ``root``.

        Visits physical operators children-first; each claims the dataflow
        nodes reachable from its output dataset that no child already
        claimed, and stamps them with its query element's span.  Nodes
        compiled from span-less operators (joins, projections) simply stay
        unstamped.
        """
        from repro.analysis.flow import operator_span

        spans = {}
        stack = [(root, False)]
        while stack:
            operator, expanded = stack.pop()
            if not expanded:
                stack.append((operator, True))
                for child in reversed(operator.children):
                    stack.append((child, False))
                continue
            span = operator_span(operator)
            walk = [operator.evaluate().operator]
            while walk:
                node = walk.pop()
                if id(node) in spans:
                    continue  # a child's node: already attributed
                spans[id(node)] = span
                walk.extend(getattr(node, "parents", ()))
        return {key: value for key, value in spans.items() if value is not None}

    def prepare(self, query):
        """Compile ``query`` once into a reusable prepared statement.

        ``$name`` placeholders stay unbound at compile time; each
        :meth:`~repro.engine.prepared.PreparedStatement.execute` call binds
        a fresh value set and re-runs the *same* physical plan — no
        parsing, linting or planning on the hot path.
        """
        from .prepared import PreparedStatement

        return PreparedStatement(self, query)

    # Execution ------------------------------------------------------------------

    def execution_fused(self):
        """The ``fused`` argument this runner's executions should pass."""
        return False if self.sanitize else self.fused

    def execution_columnar(self):
        """The ``columnar`` argument this runner's executions should pass."""
        return False if self.sanitize else self.columnar

    def execute_embeddings(self, query, parameters=None):
        """``(embeddings, meta)`` — the raw relational result."""
        _, root = self.compile(query, parameters)
        return (
            root.evaluate().collect(
                fused=self.execution_fused(),
                columnar=self.execution_columnar(),
            ),
            root.meta,
        )

    def execute(self, query, attach_bindings=True, parameters=None):
        """The EPGM pattern-matching operator: a GraphCollection of matches."""
        embeddings, meta = self.execute_embeddings(query, parameters)
        return self._build_collection(embeddings, meta, attach_bindings)

    def execute_table(self, query, parameters=None):
        """Neo4j-style tabular result honouring the RETURN clause.

        Returns a list of dicts keyed by alias/expression text.  ``RETURN *``
        yields one column per variable with the bound identifier(s).
        Supports aggregates (count/sum/min/max/avg/collect) with implicit
        grouping over the non-aggregate items, plus DISTINCT, ORDER BY,
        SKIP and LIMIT.
        """
        handler, root = self.compile(query, parameters)
        embeddings = root.evaluate().collect(
            fused=self.execution_fused(),
            columnar=self.execution_columnar(),
        )
        return self.build_rows(handler, embeddings, root.meta)

    def build_rows(self, handler, embeddings, meta):
        """Tabular rows for already-collected embeddings.

        The post-processing half of :meth:`execute_table`, split out so
        callers that manage execution themselves (prepared statements, the
        query service) can share the RETURN-clause semantics.
        """
        returns = handler.ast.returns

        if returns is not None and returns.has_aggregates:
            rows = self._aggregate_rows(returns, embeddings, meta)
        else:
            rows = [
                self._plain_row(returns, embedding, meta) for embedding in embeddings
            ]

        if returns is not None and returns.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if returns is not None and returns.order_by:
            rows = self._order_rows(returns, rows)
        if returns is not None and returns.skip is not None:
            rows = rows[returns.skip :]
        if returns is not None and returns.limit is not None:
            rows = rows[: returns.limit]
        return rows

    def _plain_row(self, returns, embedding, meta):
        if returns is None or returns.star:
            row = {}
            for variable in meta.variables:
                column = meta.entry_column(variable)
                if meta.entry_kind(variable) == "p":
                    row[variable] = [g.value for g in embedding.path_at(column)]
                else:
                    row[variable] = embedding.raw_id_at(column)
            return row
        bindings = EmbeddingBindings(embedding, meta)
        row = {}
        for item in returns.items:
            name = item.alias or str(item.expression)
            row[name] = self._evaluate_return_item(
                item.expression, bindings, embedding, meta
            )
        return row

    def _aggregate_rows(self, returns, embeddings, meta):
        """Implicit grouping: non-aggregate items are the group key."""
        group_items = [
            item
            for item in returns.items
            if not isinstance(item.expression, FunctionCall)
        ]
        agg_items = [
            item for item in returns.items if isinstance(item.expression, FunctionCall)
        ]
        groups = {}
        order = []
        for embedding in embeddings:
            bindings = EmbeddingBindings(embedding, meta)
            key_values = tuple(
                _hashable(
                    self._evaluate_return_item(
                        item.expression, bindings, embedding, meta
                    )
                )
                for item in group_items
            )
            if key_values not in groups:
                groups[key_values] = []
                order.append(key_values)
            inputs = []
            for item in agg_items:
                argument = item.expression.argument
                if argument is None:  # count(*)
                    inputs.append(1)
                else:
                    inputs.append(
                        self._evaluate_return_item(argument, bindings, embedding, meta)
                    )
            groups[key_values].append(inputs)
        rows = []
        for key_values in order:
            row = {}
            for item, value in zip(group_items, key_values):
                row[item.alias or str(item.expression)] = (
                    list(value) if isinstance(value, tuple) else value
                )
            for index, item in enumerate(agg_items):
                values = [inputs[index] for inputs in groups[key_values]]
                row[item.alias or str(item.expression)] = _aggregate(
                    item.expression.name, item.expression.argument, values
                )
            rows.append(row)
        return rows

    def _order_rows(self, returns, rows):
        column_names = None
        if rows:
            column_names = set(rows[0])

        def sort_key(row):
            key = []
            for order in returns.order_by:
                name = str(order.expression)
                if column_names is not None and name not in column_names:
                    raise CypherSemanticError(
                        "ORDER BY expression %r is not among the returned columns"
                        % name,
                        span=getattr(order.expression, "span", None),
                    )
                value = row[name] if rows else None
                # None sorts last regardless of direction
                key.append(
                    (value is None, _negate_if(value, order.descending))
                )
            return tuple(key)

        return sorted(rows, key=sort_key)

    @staticmethod
    def _evaluate_return_item(expression, bindings, embedding, meta):
        if isinstance(expression, PropertyAccess):
            return bindings.property_value(expression.variable, expression.key).raw()
        if isinstance(expression, VariableRef):
            variable = expression.name
            if meta.entry_kind(variable) == "p":
                return [
                    g.value for g in embedding.path_at(meta.entry_column(variable))
                ]
            return embedding.raw_id_at(meta.entry_column(variable))
        raise ValueError("unsupported RETURN expression %r" % (expression,))

    # Post-processing -----------------------------------------------------------------

    def _build_collection(self, embeddings, meta, attach_bindings):
        vertices_by_id = {v.id: v for v in self.graph.collect_vertices()}
        edges_by_id = {e.id: e for e in self.graph.collect_edges()}
        heads = []
        result_vertices = {}
        result_edges = {}

        for embedding in embeddings:
            head = GraphHead(self.graph.id_factory.next_id(), label="match")
            bound_vertices, bound_edges = set(), set()
            for variable in meta.variables:
                column = meta.entry_column(variable)
                kind = meta.entry_kind(variable)
                if kind == "v":
                    vid = embedding.id_at(column)
                    bound_vertices.add(vid)
                    if attach_bindings:
                        head.set_property(variable, PropertyValue(vid.value))
                elif kind == "e":
                    eid = embedding.id_at(column)
                    bound_edges.add(eid)
                    if attach_bindings:
                        head.set_property(variable, PropertyValue(eid.value))
                else:  # path
                    via = embedding.path_at(column)
                    for index, gid in enumerate(via):
                        (bound_edges if index % 2 == 0 else bound_vertices).add(gid)
                    if attach_bindings:
                        head.set_property(
                            variable, PropertyValue([g.value for g in via])
                        )
            if attach_bindings:
                for variable, key in meta.property_entries():
                    value = embedding.property_at(meta.property_index(variable, key))
                    if not value.is_null:
                        head.set_property("%s.%s" % (variable, key), value)
            heads.append(head)
            # Definition 2.4: matched elements join the new logical graph
            for vid in bound_vertices:
                vertex = vertices_by_id[vid]
                vertex.add_graph_id(head.id)
                result_vertices[vid] = vertex
            for eid in bound_edges:
                edge = edges_by_id[eid]
                edge.add_graph_id(head.id)
                result_edges[eid] = edge

        environment = self.graph.environment
        return GraphCollection(
            environment,
            environment.from_collection(heads, name="match-heads"),
            environment.from_collection(
                list(result_vertices.values()), name="match-vertices"
            ),
            environment.from_collection(
                list(result_edges.values()), name="match-edges"
            ),
        )


def _hashable(value):
    if isinstance(value, list):
        return tuple(value)
    return value


def _aggregate(name, argument, values):
    """Cypher aggregate semantics: NULL inputs are skipped."""
    if name == "count":
        if argument is None:
            return len(values)
        return sum(1 for value in values if value is not None)
    present = [value for value in values if value is not None]
    if name == "collect":
        return present
    if name == "sum":
        return sum(present) if present else 0
    if not present:
        return None
    if name == "min":
        return min(present)
    if name == "max":
        return max(present)
    if name == "avg":
        return sum(present) / len(present)
    raise CypherSemanticError("unknown aggregate %r" % name)


class _Descending:
    """Sort-order inverter usable with non-numeric values."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return isinstance(other, _Descending) and self.value == other.value


def _negate_if(value, descending):
    return _Descending(value) if descending else value

"""ExpandEmbeddings: variable-length path expressions (paper §3.1).

A ``-[e:knows*l..u]->`` edge is evaluated as an iterated 1-hop join inside
the dataflow's bulk iteration: each superstep joins the current frontier
of partial paths with the (pre-filtered) edge relation, keeps only paths
satisfying the morphism semantics, and emits paths whose length has
reached the lower bound.  The result embedding gains a PATH column with
the ``via`` identifiers (Table 2b) and — unless the target vertex was
already bound ("closing" an existing binding) — an ID column for the path
end.
"""

from repro.cypher.predicates import compile_cnf
from repro.epgm.indexed import IndexedLogicalGraph

from ..embedding import ElementBindings
from ..morphism import MatchStrategy
from .base import PhysicalOperator


class ExpandEmbeddings(PhysicalOperator):
    """Expand a bound source vertex along a variable-length query edge."""

    display = "ExpandEmbeddings"

    def __init__(
        self,
        child,
        graph,
        query_edge,
        vertex_strategy,
        edge_strategy,
        closing,
        reverse=False,
    ):
        """
        Args:
            child: Input plan; must bind the expansion's start vertex.
            graph: The data graph supplying the edge relation.
            query_edge: A variable-length
                :class:`~repro.cypher.QueryEdge`.
            vertex_strategy / edge_strategy: Morphism semantics.
            closing: True when the far endpoint is already bound in the
                input — the expansion then filters on it instead of
                binding a new column.
            reverse: Expand from the edge's *target* side (the source is
                the unbound endpoint); edges are traversed backwards and
                the emitted ``via`` list is reversed into source→target
                order.
        """
        super().__init__([child])
        if not query_edge.is_variable_length:
            raise ValueError("ExpandEmbeddings requires a variable-length edge")
        self.graph = graph
        self.query_edge = query_edge
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.closing = closing
        self.reverse = reverse
        self.start_variable = query_edge.target if reverse else query_edge.source
        self.end_variable = query_edge.source if reverse else query_edge.target
        if not child.meta.has_variable(self.start_variable):
            raise ValueError(
                "expansion start %r not bound in input" % self.start_variable
            )
        if closing and not child.meta.has_variable(self.end_variable):
            raise ValueError("closing expansion requires the end to be bound")
        meta = child.meta.with_entry(query_edge.variable, "p")
        if not closing:
            meta = meta.with_entry(self.end_variable, "v")
        self.meta = meta

    def sanitizer_context(self):
        """Declare the path column's hop bounds for sanitized execution."""
        return {
            "path_bounds": {
                self.query_edge.variable: (
                    self.query_edge.lower,
                    self.query_edge.upper,
                )
            }
        }

    # ------------------------------------------------------------------------

    def _edge_tuples(self):
        """The pre-filtered edge relation as ``(from, edge, to)`` int triples."""
        query_edge = self.query_edge
        keep = compile_cnf(query_edge.predicates)
        variable = query_edge.variable
        reverse = self.reverse
        undirected = query_edge.undirected

        def to_tuples(edge):
            if not keep(ElementBindings(variable, edge)):
                return []
            source, target = edge.source_id.value, edge.target_id.value
            if undirected:
                if source == target:
                    return [(source, edge.id.value, target)]
                return [
                    (source, edge.id.value, target),
                    (target, edge.id.value, source),
                ]
            if reverse:
                return [(target, edge.id.value, source)]
            return [(source, edge.id.value, target)]

        labels = query_edge.types
        if labels and (isinstance(self.graph, IndexedLogicalGraph) or len(labels) == 1):
            dataset = self.graph.edges_by_label(labels[0])
            for label in labels[1:]:
                dataset = dataset.union(self.graph.edges_by_label(label))
        else:
            dataset = self.graph.edges
        return dataset.flat_map(
            to_tuples, name="ExpandEmbeddings(%s):edges" % variable
        )

    def _build(self):
        child_meta = self.children[0].meta
        vertex_iso = self.vertex_strategy is MatchStrategy.ISOMORPHISM
        edge_iso = self.edge_strategy is MatchStrategy.ISOMORPHISM
        lower = self.query_edge.lower
        upper = self.query_edge.upper
        closing = self.closing
        reverse = self.reverse
        environment = self.graph.environment
        input_ds = self.children[0].evaluate()
        edges = self._edge_tuples()

        start_reader = child_meta.id_reader(self.start_variable)
        end_reader = (
            child_meta.id_reader(self.end_variable) if self.closing else None
        )
        base_vertex_readers = tuple(
            child_meta.id_reader(v)
            for v in child_meta.variables
            if child_meta.entry_kind(v) == "v"
        )
        base_edge_readers = tuple(
            child_meta.id_reader(v)
            for v in child_meta.variables
            if child_meta.entry_kind(v) == "e"
        )
        base_path_columns = [
            child_meta.entry_column(v)
            for v in child_meta.variables
            if child_meta.entry_kind(v) == "p"
        ]

        def initial_item(embedding):
            """(embedding, path, end, seen-vertices, seen-edges)."""
            vertex_ids = set()
            edge_ids = set()
            if vertex_iso or edge_iso:
                for reader in base_vertex_readers:
                    vertex_ids.add(reader(embedding))
                for reader in base_edge_readers:
                    edge_ids.add(reader(embedding))
                for column in base_path_columns:
                    for index, value in enumerate(embedding.raw_path_at(column)):
                        (edge_ids if index % 2 == 0 else vertex_ids).add(value)
            start = start_reader(embedding)
            return (embedding, (), start, frozenset(vertex_ids), frozenset(edge_ids))

        def extend(item, edge_tuple):
            embedding, path, end, vertex_ids, edge_ids = item
            _, edge_id, new_end = edge_tuple
            if edge_iso and edge_id in edge_ids:
                return []
            if path:
                # the previous end becomes a path-internal vertex
                if vertex_iso and end in vertex_ids:
                    return []
                new_path = path + (end, edge_id)
                new_vertex_ids = (
                    frozenset(vertex_ids | {end}) if vertex_iso else vertex_ids
                )
            else:
                new_path = (edge_id,)
                new_vertex_ids = vertex_ids
            new_edge_ids = frozenset(edge_ids | {edge_id}) if edge_iso else edge_ids
            return [(embedding, new_path, new_end, new_vertex_ids, new_edge_ids)]

        def emit_result(item):
            """Attach the path (and end binding) to the input embedding."""
            embedding, path, end, vertex_ids, _ = item
            via = tuple(reversed(path)) if reverse else path
            if closing:
                if end != end_reader(embedding):
                    return []
                return [embedding.append_path(via)]
            if vertex_iso and end in vertex_ids:
                return []
            from repro.epgm import GradoopId

            return [embedding.append_path(via).append_id(GradoopId(end))]

        def step(working, iteration):
            expanded = working.join(
                edges,
                lambda item: item[2],  # current path end
                lambda edge_tuple: edge_tuple[0],
                join_fn=extend,
                name="ExpandEmbeddings:hop",
            )
            if iteration >= lower:
                emitted = expanded.flat_map(
                    emit_result, name="ExpandEmbeddings:emit"
                )
            else:
                emitted = environment.from_collection([], name="ExpandEmbeddings:none")
            return expanded, emitted

        frontier = input_ds.map(initial_item, name="ExpandEmbeddings:init")
        # lazy: the supersteps re-run on every plan execution, so a cached
        # plan re-bound with new $parameters re-expands from the *current*
        # frontier instead of replaying the first execution's paths
        result = environment.iterate(
            frontier, step, max_iterations=upper,
            name="ExpandEmbeddings:iterate",
        )
        if lower == 0:
            zero_hop = frontier.flat_map(
                emit_result, name="ExpandEmbeddings:zero-hop"
            )
            result = result.union(zero_hop)
        return result

    def describe(self):
        types = (
            ":" + "|".join(self.query_edge.types) if self.query_edge.types else ""
        )
        return "ExpandEmbeddings((%s)-[%s%s*%d..%d]->(%s)%s%s)" % (
            self.query_edge.source,
            self.query_edge.variable,
            types,
            self.query_edge.lower,
            self.query_edge.upper,
            self.query_edge.target,
            ", closing" if self.closing else "",
            ", reverse" if self.reverse else "",
        )


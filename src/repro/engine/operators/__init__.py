"""Physical query operators (paper §3.1)."""

from .base import PhysicalOperator
from .expand import ExpandEmbeddings
from .filter_project import ProjectEmbeddings, SelectEmbeddings
from .join import CartesianEmbeddings, JoinEmbeddings
from .leaves import SelectAndProjectEdges, SelectAndProjectVertices

__all__ = [
    "CartesianEmbeddings",
    "ExpandEmbeddings",
    "JoinEmbeddings",
    "PhysicalOperator",
    "ProjectEmbeddings",
    "SelectAndProjectEdges",
    "SelectAndProjectVertices",
    "SelectEmbeddings",
]

"""Base class for physical query operators.

A query plan is a tree of physical operators (Fig. 2).  Each operator
carries the :class:`~repro.engine.embedding.EmbeddingMetaData` of its
output and knows how to build the dataflow ``DataSet`` that computes it.
"""


class PhysicalOperator:
    """A node of the physical query plan."""

    #: human-readable operator name used in EXPLAIN output and metrics
    display = "physical-operator"

    def __init__(self, children=()):
        self.children = list(children)
        self.meta = None  # set by subclasses
        self.estimated_cardinality = None  # set by the planner
        self._dataset = None
        self._sanitizer = None  # set via EmbeddingSanitizer.attach()

    def evaluate(self):
        """The output DataSet (built once, cached).

        With a sanitizer attached the freshly built dataset is wrapped in
        its per-embedding checks.  The gate runs once per *build*, never
        per record, so plain execution pays nothing for the feature.
        """
        if self._dataset is None:
            dataset = self._build()
            if self._sanitizer is not None:
                dataset = self._sanitizer.instrument(self, dataset)
            self._dataset = dataset
        return self._dataset

    def reset(self):
        """Drop the cached datasets of this whole sub-plan.

        The next :meth:`evaluate` rebuilds from scratch, so one compiled
        plan can be executed repeatedly — after attaching or detaching a
        sanitizer, or between ``explain(analyze=True)`` calls.  Dataset
        sharing a planner installed across leaves is rebuilt per operator
        afterwards (correct, merely less shared).
        """
        self._dataset = None
        for child in self.children:
            child.reset()

    def sanitizer_context(self):
        """Operator-specific facts the embedding sanitizer needs.

        Subclasses override this to declare e.g. the ``*lower..upper``
        bounds of a variable-length path column; the sanitizer merges the
        contexts of every operator in the plan at attach time.
        """
        return {}

    def _build(self):
        raise NotImplementedError

    def describe(self):
        """One line for EXPLAIN trees."""
        return self.display

    def explain(self, indent=0, analyze=False, _cache=None):
        """Recursive EXPLAIN rendering (root at top, inputs below).

        With ``analyze=True`` every operator is executed and the actual
        output cardinality is shown next to the planner's estimate, making
        estimation errors visible (EXPLAIN ANALYZE).  One dataflow result
        cache is shared across the whole tree so common sub-plans are
        evaluated once per call.
        """
        if analyze and _cache is None:
            _cache = {}
        line = "%s%s" % ("  " * indent, self.describe())
        if self.estimated_cardinality is not None:
            line += "  [est=%d" % round(self.estimated_cardinality)
            if analyze:
                line += " actual=%d" % self.actual_cardinality(_cache)
            line += "]"
        elif analyze:
            line += "  [actual=%d]" % self.actual_cardinality(_cache)
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1, analyze=analyze, _cache=_cache))
        return "\n".join(lines)

    def actual_cardinality(self, cache=None):
        """Execute this operator's sub-plan and count the output rows.

        ``cache`` — a dataflow result cache (operator id → partitions) —
        may be shared between calls on different plan nodes to evaluate
        each dataflow operator only once (EXPLAIN ANALYZE, the estimate
        audit).
        """
        dataset = self.evaluate()
        # sanitized runs stay per-record (see docs/architecture.md); shared
        # caches force that anyway, but an uncached call must opt out too
        fused = False if self._sanitizer is not None else None
        partitions = dataset.environment.run(
            dataset.operator, cache=cache, fused=fused
        )
        return sum(len(partition) for partition in partitions)

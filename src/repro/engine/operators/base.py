"""Base class for physical query operators.

A query plan is a tree of physical operators (Fig. 2).  Each operator
carries the :class:`~repro.engine.embedding.EmbeddingMetaData` of its
output and knows how to build the dataflow ``DataSet`` that computes it.
"""


class PhysicalOperator:
    """A node of the physical query plan."""

    #: human-readable operator name used in EXPLAIN output and metrics
    display = "physical-operator"

    def __init__(self, children=()):
        self.children = list(children)
        self.meta = None  # set by subclasses
        self.estimated_cardinality = None  # set by the planner
        self._dataset = None

    def evaluate(self):
        """The output DataSet (built once, cached)."""
        if self._dataset is None:
            self._dataset = self._build()
        return self._dataset

    def _build(self):
        raise NotImplementedError

    def describe(self):
        """One line for EXPLAIN trees."""
        return self.display

    def explain(self, indent=0, analyze=False):
        """Recursive EXPLAIN rendering (root at top, inputs below).

        With ``analyze=True`` every operator is executed and the actual
        output cardinality is shown next to the planner's estimate, making
        estimation errors visible (EXPLAIN ANALYZE).
        """
        line = "%s%s" % ("  " * indent, self.describe())
        if self.estimated_cardinality is not None:
            line += "  [est=%d" % round(self.estimated_cardinality)
            if analyze:
                line += " actual=%d" % self.actual_cardinality()
            line += "]"
        elif analyze:
            line += "  [actual=%d]" % self.actual_cardinality()
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1, analyze=analyze))
        return "\n".join(lines)

    def actual_cardinality(self):
        """Execute this operator's sub-plan and count the output rows."""
        return self.evaluate().count()

"""Leaf operators: SelectAndProjectVertices / SelectAndProjectEdges.

Each combines Select → Project → Transform in a single FlatMap (paper
§3.1): filter by the element's pushed-down CNF, keep only the property
keys later operators need, and emit an embedding.
"""

from repro.cypher.predicates import compile_cnf
from repro.epgm.indexed import IndexedLogicalGraph

from ..columnar import leaf_edge_kernel, leaf_vertex_kernel
from ..embedding import Embedding, ElementBindings, EmbeddingMetaData
from .base import PhysicalOperator


def _label_scoped_dataset(graph, labels, kind):
    """The smallest element dataset covering a label alternation.

    Indexed graphs read one dataset per label (paper §3.4); plain graphs
    scan everything once — per-label filtering there would multiply scans.
    """
    by_label = graph.vertices_by_label if kind == "v" else graph.edges_by_label
    full = graph.vertices if kind == "v" else graph.edges
    if labels and (isinstance(graph, IndexedLogicalGraph) or len(labels) == 1):
        dataset = by_label(labels[0])
        for label in labels[1:]:
            dataset = dataset.union(by_label(label))
        return dataset
    return full


class SelectAndProjectVertices(PhysicalOperator):
    """Vertices satisfying a query vertex's predicates, as embeddings."""

    display = "SelectAndProjectVertices"

    def __init__(self, graph, query_vertex, property_keys):
        super().__init__()
        self.graph = graph
        self.query_vertex = query_vertex
        self.property_keys = sorted(property_keys)
        meta = EmbeddingMetaData().with_entry(query_vertex.variable, "v")
        for key in self.property_keys:
            meta = meta.with_property(query_vertex.variable, key)
        self.meta = meta

    def _build(self):
        variable = self.query_vertex.variable
        keep = compile_cnf(self.query_vertex.predicates)
        keys = self.property_keys

        def select_project_transform(vertex):
            if not keep(ElementBindings(variable, vertex)):
                return []
            embedding = Embedding.of_ids(vertex.id)
            if keys:
                embedding = embedding.append_properties(
                    [vertex.get_property(key) for key in keys]
                )
            return [embedding]

        # columnar fused chains bulk-build the surviving rows into one
        # chunk; the per-element CNF (label fast path included) is shared
        select_project_transform.columnar_leaf = leaf_vertex_kernel(
            variable, keep, keys
        )

        source = _label_scoped_dataset(self.graph, self.query_vertex.labels, "v")
        return source.flat_map(
            select_project_transform, name="SelectAndProjectVertices(%s)" % variable
        )

    def describe(self):
        label = ":" + "|".join(self.query_vertex.labels) if self.query_vertex.labels else ""
        return "SelectAndProjectVertices(%s%s)" % (self.query_vertex.variable, label)


class SelectAndProjectEdges(PhysicalOperator):
    """Edges satisfying a query edge's predicates, as embeddings.

    The output embedding has columns ``[source, edge, target]`` (``[source,
    edge]`` for loop edges where the query source and target coincide).
    An undirected query edge emits both orientations of each data edge.
    """

    display = "SelectAndProjectEdges"

    def __init__(self, graph, query_edge, property_keys, distinct_endpoints=False):
        """``distinct_endpoints``: drop self-loop data edges.  Set by the
        planner under vertex isomorphism when the query edge's endpoints
        are different variables — a leaf-only plan has no downstream join
        to enforce the injectivity of the two endpoint bindings."""
        super().__init__()
        if query_edge.is_variable_length:
            raise ValueError(
                "variable-length edge %r needs ExpandEmbeddings" % query_edge.variable
            )
        self.graph = graph
        self.query_edge = query_edge
        self.property_keys = sorted(property_keys)
        self.is_loop = query_edge.source == query_edge.target
        self.distinct_endpoints = distinct_endpoints and not self.is_loop
        meta = EmbeddingMetaData().with_entry(query_edge.source, "v")
        meta = meta.with_entry(query_edge.variable, "e")
        if not self.is_loop:
            meta = meta.with_entry(query_edge.target, "v")
        for key in self.property_keys:
            meta = meta.with_property(query_edge.variable, key)
        self.meta = meta

    def _build(self):
        variable = self.query_edge.variable
        keep = compile_cnf(self.query_edge.predicates)
        keys = self.property_keys
        is_loop = self.is_loop
        undirected = self.query_edge.undirected
        distinct_endpoints = self.distinct_endpoints

        def select_project_transform(edge):
            if not keep(ElementBindings(variable, edge)):
                return []
            if distinct_endpoints and edge.source_id == edge.target_id:
                return []
            if is_loop:
                if edge.source_id != edge.target_id:
                    return []
                orientations = [(edge.source_id, edge.id)]
            else:
                orientations = [(edge.source_id, edge.id, edge.target_id)]
                if undirected and edge.source_id != edge.target_id:
                    orientations.append((edge.target_id, edge.id, edge.source_id))
            results = []
            for ids in orientations:
                embedding = Embedding.of_ids(*ids)
                if keys:
                    embedding = embedding.append_properties(
                        [edge.get_property(key) for key in keys]
                    )
                results.append(embedding)
            return results

        select_project_transform.columnar_leaf = leaf_edge_kernel(
            variable, keep, keys, is_loop, undirected, distinct_endpoints
        )

        source = _label_scoped_dataset(self.graph, self.query_edge.types, "e")
        return source.flat_map(
            select_project_transform, name="SelectAndProjectEdges(%s)" % variable
        )

    def describe(self):
        types = ":" + "|".join(self.query_edge.types) if self.query_edge.types else ""
        arrow = "-" if self.query_edge.undirected else "->"
        return "SelectAndProjectEdges((%s)-[%s%s]%s(%s))" % (
            self.query_edge.source,
            self.query_edge.variable,
            types,
            arrow,
            self.query_edge.target,
        )

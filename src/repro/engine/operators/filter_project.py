"""SelectEmbeddings and ProjectEmbeddings (paper §3.1)."""

from repro.cypher.predicates import compile_cnf

from ..columnar import project_kernel, select_kernel
from ..embedding import EmbeddingMetaData, compile_property_projector
from .base import PhysicalOperator


class SelectEmbeddings(PhysicalOperator):
    """Evaluate predicates spanning multiple query elements."""

    display = "SelectEmbeddings"

    def __init__(self, child, cnf):
        super().__init__([child])
        self.cnf = cnf
        self.meta = child.meta
        missing = cnf.variables() - set(child.meta.variables)
        if missing:
            raise ValueError(
                "SelectEmbeddings predicate references unbound variables: %s"
                % ", ".join(sorted(missing))
            )

    def _build(self):
        evaluate = compile_cnf(self.cnf)
        bind = self.meta.compiled_bindings()

        def keep(embedding):
            return evaluate(bind(embedding))

        keep.columnar_kernel = select_kernel(evaluate, self.meta)

        return self.children[0].evaluate().filter(
            keep, name="SelectEmbeddings(%s)" % self.cnf
        )

    def describe(self):
        return "SelectEmbeddings(%s)" % self.cnf


class ProjectEmbeddings(PhysicalOperator):
    """Drop properties that later stages no longer need."""

    display = "ProjectEmbeddings"

    def __init__(self, child, keep_pairs):
        """``keep_pairs``: list of ``(variable, key)`` to retain, in order."""
        super().__init__([child])
        self.keep_pairs = list(keep_pairs)
        self._keep_indices = [
            child.meta.property_index(variable, key)
            for variable, key in self.keep_pairs
        ]
        meta = EmbeddingMetaData(
            {v: (child.meta.entry_column(v), child.meta.entry_kind(v))
             for v in child.meta.variables}
        )
        for variable, key in self.keep_pairs:
            meta = meta.with_property(variable, key)
        self.meta = meta

    def _build(self):
        keep_indices = list(self._keep_indices)
        project = compile_property_projector(keep_indices)
        # the sanitizer wrapper below shadows the closure, dropping the
        # kernel — sanitized runs are per-record by construction
        project.columnar_kernel = project_kernel(keep_indices)

        sanitizer = self._sanitizer
        if sanitizer is not None:
            operator, plain_project = self, project

            def project(embedding):  # noqa: F811
                projected = plain_project(embedding)
                sanitizer.check_projection(
                    operator, embedding, projected, keep_indices
                )
                return projected

        return self.children[0].evaluate().map(
            project, name="ProjectEmbeddings"
        )

    def describe(self):
        return "ProjectEmbeddings(%s)" % ", ".join(
            "%s.%s" % pair for pair in self.keep_pairs
        )

"""JoinEmbeddingsOnProperty: equi-join two sub-queries on property values.

Paper §3.1 calls out exactly this as the extensibility example: "it is
easy to integrate new query operators, for example, to join subqueries on
property values."  The planner uses it for cross-entry equality clauses
like ``WHERE a.city = b.city`` between otherwise disconnected patterns,
replacing a Cartesian product plus filter with a hash join.

NULL never joins (Cypher: ``NULL = NULL`` is unknown), and numeric keys
compare across int/float like the predicate evaluator does.
"""

from ..embedding import EmbeddingMetaData, compile_merge
from ..morphism import compile_morphism_check
from .base import PhysicalOperator


def _join_key(value):
    """A hashable key with PropertyValue equality semantics."""
    if value.is_number:
        return ("num", float(value.raw()))
    return (value.type_name, value.to_bytes())


class JoinEmbeddingsOnProperty(PhysicalOperator):
    """Join on ``left_var.left_key = right_var.right_key``."""

    display = "JoinEmbeddingsOnProperty"

    def __init__(
        self,
        left,
        right,
        left_property,
        right_property,
        vertex_strategy,
        edge_strategy,
    ):
        """``left_property``/``right_property``: ``(variable, key)`` pairs
        that must be projected into the respective inputs."""
        super().__init__([left, right])
        self.left_property = left_property
        self.right_property = right_property
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self._left_index = left.meta.property_index(*left_property)
        self._right_index = right.meta.property_index(*right_property)
        self.meta, self._drop_columns = EmbeddingMetaData.combine(
            left.meta, right.meta, []
        )

    def _build(self):
        left_index = self._left_index
        right_index = self._right_index
        left_reader = self.children[0].meta.property_reader(*self.left_property)
        right_reader = self.children[1].meta.property_reader(*self.right_property)
        merge = compile_merge(
            self.children[0].meta, self.children[1].meta, frozenset()
        )
        check = compile_morphism_check(
            self.meta, self.vertex_strategy, self.edge_strategy
        )

        def not_null(reader):
            def keep(embedding):
                return not reader(embedding).is_null

            return keep

        if check is None:

            def flat_join(left_embedding, right_embedding):
                return [merge(left_embedding, right_embedding)]

        else:

            def flat_join(left_embedding, right_embedding):
                merged = merge(left_embedding, right_embedding)
                if check(merged):
                    return [merged]
                return []

        sanitizer = self._sanitizer
        if sanitizer is not None:
            # Property keys compare by value semantics (int 1 == float 1.0),
            # not byte-for-byte; recheck key equality and the NULL contract.
            operator, plain_flat_join = self, flat_join

            def flat_join(left_embedding, right_embedding):  # noqa: F811
                left_value = left_embedding.property_at(left_index)
                right_value = right_embedding.property_at(right_index)
                if (
                    left_value.is_null
                    or right_value.is_null
                    or _join_key(left_value) != _join_key(right_value)
                ):
                    sanitizer.report(
                        operator,
                        "S209",
                        "property join matched %r with %r"
                        % (left_value.raw(), right_value.raw()),
                    )
                return plain_flat_join(left_embedding, right_embedding)

        left_ds = self.children[0].evaluate().filter(
            not_null(left_reader), name="JoinEmbeddingsOnProperty:left-not-null"
        )
        right_ds = self.children[1].evaluate().filter(
            not_null(right_reader), name="JoinEmbeddingsOnProperty:right-not-null"
        )
        return left_ds.join(
            right_ds,
            lambda e: _join_key(left_reader(e)),
            lambda e: _join_key(right_reader(e)),
            join_fn=flat_join,
            name="JoinEmbeddingsOnProperty(%s.%s=%s.%s)"
            % (self.left_property + self.right_property),
        )

    def describe(self):
        return "JoinEmbeddingsOnProperty(%s.%s = %s.%s)" % (
            self.left_property + self.right_property
        )

"""JoinEmbeddings: combine two sub-query results on shared variables.

Implemented with the dataflow FlatJoin so embeddings violating the
configured morphism semantics are dropped inside the join, never
materialized (paper §3.1).
"""

from ..embedding import EmbeddingMetaData
from ..morphism import embedding_satisfies_morphism
from .base import PhysicalOperator

from repro.dataflow import JoinStrategy


class JoinEmbeddings(PhysicalOperator):
    """Equi-join of two embedding relations on one or more variables."""

    display = "JoinEmbeddings"

    def __init__(
        self,
        left,
        right,
        join_variables,
        vertex_strategy,
        edge_strategy,
        strategy=JoinStrategy.AUTO,
    ):
        super().__init__([left, right])
        if not join_variables:
            raise ValueError("JoinEmbeddings requires at least one join variable")
        self.join_variables = list(join_variables)
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.strategy = strategy
        for variable in self.join_variables:
            if not left.meta.has_variable(variable):
                raise ValueError("join variable %r missing on left side" % variable)
            if not right.meta.has_variable(variable):
                raise ValueError("join variable %r missing on right side" % variable)
        self.meta, self._drop_columns = EmbeddingMetaData.combine(
            left.meta, right.meta, self.join_variables
        )
        self._left_columns = [left.meta.entry_column(v) for v in self.join_variables]
        self._right_columns = [right.meta.entry_column(v) for v in self.join_variables]

    def _build(self):
        left_columns = tuple(self._left_columns)
        right_columns = tuple(self._right_columns)
        drop = frozenset(self._drop_columns)
        meta = self.meta
        vertex_strategy = self.vertex_strategy
        edge_strategy = self.edge_strategy

        # single-column joins use the bare id so the shuffle hash matches
        # the id-based data placement (tuple hashes differ from int hashes)
        if len(left_columns) == 1:
            left_only, right_only = left_columns[0], right_columns[0]

            def left_key(embedding):
                return embedding.raw_id_at(left_only)

            def right_key(embedding):
                return embedding.raw_id_at(right_only)

        else:

            def left_key(embedding):
                return tuple(embedding.raw_id_at(column) for column in left_columns)

            def right_key(embedding):
                return tuple(
                    embedding.raw_id_at(column) for column in right_columns
                )

        def flat_join(left_embedding, right_embedding):
            merged = left_embedding.merge(right_embedding, drop)
            if embedding_satisfies_morphism(
                merged, meta, vertex_strategy, edge_strategy
            ):
                return [merged]
            return []

        sanitizer = self._sanitizer
        if sanitizer is not None:
            # The join drops the right-side key columns during the merge,
            # so byte agreement must be checked here, before they vanish.
            operator, plain_flat_join = self, flat_join

            def flat_join(left_embedding, right_embedding):  # noqa: F811
                sanitizer.check_join_keys(
                    operator,
                    left_embedding,
                    right_embedding,
                    left_columns,
                    right_columns,
                )
                return plain_flat_join(left_embedding, right_embedding)

        return self.children[0].evaluate().join(
            self.children[1].evaluate(),
            left_key,
            right_key,
            join_fn=flat_join,
            strategy=self.strategy,
            name="JoinEmbeddings(%s)" % ",".join(self.join_variables),
        )

    def describe(self):
        return "JoinEmbeddings(on %s)" % ", ".join(self.join_variables)


class CartesianEmbeddings(PhysicalOperator):
    """Cross product of two disconnected sub-patterns.

    Needed when a MATCH clause contains disconnected components; still
    applies the morphism check on the combined embedding.
    """

    display = "CartesianEmbeddings"

    def __init__(self, left, right, vertex_strategy, edge_strategy):
        super().__init__([left, right])
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.meta, self._drop_columns = EmbeddingMetaData.combine(
            left.meta, right.meta, []
        )

    def _build(self):
        meta = self.meta
        vertex_strategy = self.vertex_strategy
        edge_strategy = self.edge_strategy

        def combine(pair):
            left_embedding, right_embedding = pair
            merged = left_embedding.merge(right_embedding)
            if embedding_satisfies_morphism(
                merged, meta, vertex_strategy, edge_strategy
            ):
                return [merged]
            return []

        crossed = self.children[0].evaluate().cross(
            self.children[1].evaluate(), name="CartesianEmbeddings"
        )
        return crossed.flat_map(combine, name="CartesianEmbeddings(check)")

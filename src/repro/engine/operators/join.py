"""JoinEmbeddings: combine two sub-query results on shared variables.

Implemented with the dataflow FlatJoin so embeddings violating the
configured morphism semantics are dropped inside the join, never
materialized (paper §3.1).
"""

from ..columnar import columnar_join_spec, shuffle_kernel
from ..embedding import EmbeddingMetaData, compile_merge
from ..morphism import compile_morphism_check
from .base import PhysicalOperator

from repro.dataflow import JoinStrategy


class JoinEmbeddings(PhysicalOperator):
    """Equi-join of two embedding relations on one or more variables."""

    display = "JoinEmbeddings"

    def __init__(
        self,
        left,
        right,
        join_variables,
        vertex_strategy,
        edge_strategy,
        strategy=JoinStrategy.AUTO,
    ):
        super().__init__([left, right])
        if not join_variables:
            raise ValueError("JoinEmbeddings requires at least one join variable")
        self.join_variables = list(join_variables)
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.strategy = strategy
        for variable in self.join_variables:
            if not left.meta.has_variable(variable):
                raise ValueError("join variable %r missing on left side" % variable)
            if not right.meta.has_variable(variable):
                raise ValueError("join variable %r missing on right side" % variable)
        self.meta, self._drop_columns = EmbeddingMetaData.combine(
            left.meta, right.meta, self.join_variables
        )
        self._left_columns = [left.meta.entry_column(v) for v in self.join_variables]
        self._right_columns = [right.meta.entry_column(v) for v in self.join_variables]

    def _build(self):
        left_columns = tuple(self._left_columns)
        right_columns = tuple(self._right_columns)
        left_meta = self.children[0].meta
        right_meta = self.children[1].meta

        # compiled key readers yield the bare id for single-column joins so
        # the shuffle hash matches the id-based data placement (tuple hashes
        # differ from int hashes), and tuples otherwise
        left_key = left_meta.join_key_reader(self.join_variables)
        right_key = right_meta.join_key_reader(self.join_variables)
        merge = compile_merge(left_meta, right_meta, frozenset(self._drop_columns))
        check = compile_morphism_check(
            self.meta, self.vertex_strategy, self.edge_strategy
        )

        if check is None:

            def flat_join(left_embedding, right_embedding):
                return [merge(left_embedding, right_embedding)]

        else:

            def flat_join(left_embedding, right_embedding):
                merged = merge(left_embedding, right_embedding)
                if check(merged):
                    return [merged]
                return []

        # columnar fast path: the join spec (key columns, merge shape,
        # morphism watch set) rides on the plain closures; the sanitizer
        # wrappers below shadow them, so sanitized runs stay per-record
        spec = columnar_join_spec(
            left_meta,
            right_meta,
            self.join_variables,
            self._drop_columns,
            self.meta,
            self.vertex_strategy,
            self.edge_strategy,
        )
        if spec is not None:
            flat_join.columnar_join = spec
            left_key.columnar_shuffle = shuffle_kernel(left_columns)
            right_key.columnar_shuffle = shuffle_kernel(right_columns)

        sanitizer = self._sanitizer
        if sanitizer is not None:
            # The join drops the right-side key columns during the merge,
            # so byte agreement must be checked here, before they vanish.
            operator, plain_flat_join = self, flat_join

            def flat_join(left_embedding, right_embedding):  # noqa: F811
                sanitizer.check_join_keys(
                    operator,
                    left_embedding,
                    right_embedding,
                    left_columns,
                    right_columns,
                )
                return plain_flat_join(left_embedding, right_embedding)

        return self.children[0].evaluate().join(
            self.children[1].evaluate(),
            left_key,
            right_key,
            join_fn=flat_join,
            strategy=self.strategy,
            name="JoinEmbeddings(%s)" % ",".join(self.join_variables),
        )

    def describe(self):
        return "JoinEmbeddings(on %s)" % ", ".join(self.join_variables)


class CartesianEmbeddings(PhysicalOperator):
    """Cross product of two disconnected sub-patterns.

    Needed when a MATCH clause contains disconnected components; still
    applies the morphism check on the combined embedding.
    """

    display = "CartesianEmbeddings"

    def __init__(self, left, right, vertex_strategy, edge_strategy):
        super().__init__([left, right])
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.meta, self._drop_columns = EmbeddingMetaData.combine(
            left.meta, right.meta, []
        )

    def _build(self):
        merge = compile_merge(
            self.children[0].meta, self.children[1].meta, frozenset()
        )
        check = compile_morphism_check(
            self.meta, self.vertex_strategy, self.edge_strategy
        )

        if check is None:

            def combine(pair):
                return [merge(pair[0], pair[1])]

        else:

            def combine(pair):
                merged = merge(pair[0], pair[1])
                if check(merged):
                    return [merged]
                return []

        crossed = self.children[0].evaluate().cross(
            self.children[1].evaluate(), name="CartesianEmbeddings"
        )
        return crossed.flat_map(combine, name="CartesianEmbeddings(check)")

"""Pre-computed graph statistics for the query planner (paper §3.2).

"We currently utilize the total number of vertices and edges, vertex and
edge label distributions as well as the number of distinct source and
target vertices overall and by edge label."

Statistics can be persisted to JSON (Gradoop ships statistics files next
to its CSV datasets) so repeated runs skip the counting pass.
"""

import json


class GraphStatistics:
    """Cardinality statistics of one data graph."""

    def __init__(
        self,
        vertex_count,
        edge_count,
        vertex_count_by_label,
        edge_count_by_label,
        distinct_source_count,
        distinct_target_count,
        distinct_source_by_label,
        distinct_target_by_label,
        max_out_degree_by_label=None,
        max_in_degree_by_label=None,
    ):
        self.vertex_count = vertex_count
        self.edge_count = edge_count
        #: monotone counter bumped whenever the underlying graph (and thus
        #: these statistics) changes; plan/result cache keys include it, so
        #: a bump invalidates every cached artifact derived from the old
        #: graph without touching the caches themselves
        self.version = 0
        self.vertex_count_by_label = dict(vertex_count_by_label)
        self.edge_count_by_label = dict(edge_count_by_label)
        self.distinct_source_count = distinct_source_count
        self.distinct_target_count = distinct_target_count
        self.distinct_source_by_label = dict(distinct_source_by_label)
        self.distinct_target_by_label = dict(distinct_target_by_label)
        #: per-edge-label worst-case fan-out/fan-in: the static cost-bound
        #: analyzer composes var-length expansion bounds from these.
        #: ``None`` (statistics persisted before this field existed) makes
        #: the accessors fall back to the per-label edge count, which is a
        #: sound — just looser — upper bound.
        self.max_out_degree_by_label = (
            dict(max_out_degree_by_label)
            if max_out_degree_by_label is not None else None
        )
        self.max_in_degree_by_label = (
            dict(max_in_degree_by_label)
            if max_in_degree_by_label is not None else None
        )

    @classmethod
    def from_graph(cls, graph):
        """Single pass over the graph's element datasets."""
        vertex_count_by_label = {}
        for vertex in graph.collect_vertices():
            vertex_count_by_label[vertex.label] = (
                vertex_count_by_label.get(vertex.label, 0) + 1
            )
        edge_count_by_label = {}
        sources, targets = set(), set()
        sources_by_label, targets_by_label = {}, {}
        out_degree, in_degree = {}, {}
        edge_count = 0
        for edge in graph.collect_edges():
            edge_count += 1
            edge_count_by_label[edge.label] = edge_count_by_label.get(edge.label, 0) + 1
            sources.add(edge.source_id)
            targets.add(edge.target_id)
            sources_by_label.setdefault(edge.label, set()).add(edge.source_id)
            targets_by_label.setdefault(edge.label, set()).add(edge.target_id)
            out_key = (edge.label, edge.source_id)
            in_key = (edge.label, edge.target_id)
            out_degree[out_key] = out_degree.get(out_key, 0) + 1
            in_degree[in_key] = in_degree.get(in_key, 0) + 1
        max_out, max_in = {}, {}
        for (label, _source), degree in out_degree.items():
            max_out[label] = max(max_out.get(label, 0), degree)
        for (label, _target), degree in in_degree.items():
            max_in[label] = max(max_in.get(label, 0), degree)
        return cls(
            vertex_count=sum(vertex_count_by_label.values()),
            edge_count=edge_count,
            vertex_count_by_label=vertex_count_by_label,
            edge_count_by_label=edge_count_by_label,
            distinct_source_count=len(sources),
            distinct_target_count=len(targets),
            distinct_source_by_label={
                label: len(ids) for label, ids in sources_by_label.items()
            },
            distinct_target_by_label={
                label: len(ids) for label, ids in targets_by_label.items()
            },
            max_out_degree_by_label=max_out,
            max_in_degree_by_label=max_in,
        )

    # Persistence ---------------------------------------------------------------

    def to_dict(self):
        data = {
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "vertex_count_by_label": self.vertex_count_by_label,
            "edge_count_by_label": self.edge_count_by_label,
            "distinct_source_count": self.distinct_source_count,
            "distinct_target_count": self.distinct_target_count,
            "distinct_source_by_label": self.distinct_source_by_label,
            "distinct_target_by_label": self.distinct_target_by_label,
        }
        if self.max_out_degree_by_label is not None:
            data["max_out_degree_by_label"] = self.max_out_degree_by_label
        if self.max_in_degree_by_label is not None:
            data["max_in_degree_by_label"] = self.max_in_degree_by_label
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def write_json(self, path):
        """Persist next to a dataset, like Gradoop's statistics files."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def read_json(cls, path):
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # Lookups with sensible fallbacks ------------------------------------------

    def vertices_with_labels(self, labels):
        """Vertex count matching a label alternation ([] = all labels)."""
        if not labels:
            return self.vertex_count
        return sum(self.vertex_count_by_label.get(label, 0) for label in labels)

    def edges_with_labels(self, labels):
        if not labels:
            return self.edge_count
        return sum(self.edge_count_by_label.get(label, 0) for label in labels)

    def distinct_sources(self, labels):
        if not labels:
            return max(self.distinct_source_count, 1)
        return max(
            sum(self.distinct_source_by_label.get(label, 0) for label in labels), 1
        )

    def distinct_targets(self, labels):
        if not labels:
            return max(self.distinct_target_count, 1)
        return max(
            sum(self.distinct_target_by_label.get(label, 0) for label in labels), 1
        )

    def max_out_degree(self, labels):
        """Worst-case out-degree over a type alternation ([] = any type).

        Falls back to the matching edge count — any vertex's fan-out is
        bounded by the number of edges — when the per-label maxima were
        not persisted (pre-existing statistics files).
        """
        if self.max_out_degree_by_label is None:
            return self.edges_with_labels(labels)
        if not labels:
            return max(self.max_out_degree_by_label.values(), default=0)
        return max(
            (self.max_out_degree_by_label.get(label, 0) for label in labels),
            default=0,
        )

    def max_in_degree(self, labels):
        """Worst-case in-degree over a type alternation ([] = any type)."""
        if self.max_in_degree_by_label is None:
            return self.edges_with_labels(labels)
        if not labels:
            return max(self.max_in_degree_by_label.values(), default=0)
        return max(
            (self.max_in_degree_by_label.get(label, 0) for label in labels),
            default=0,
        )

    def __repr__(self):
        return "GraphStatistics(|V|=%d, |E|=%d, %d vertex labels, %d edge labels)" % (
            self.vertex_count,
            self.edge_count,
            len(self.vertex_count_by_label),
            len(self.edge_count_by_label),
        )

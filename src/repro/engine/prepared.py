"""Prepared statements: compile once, execute many times with new bindings.

The openCypher semantics work (Francis et al.) specifies query parameters
as *the* mechanism for plan reuse across invocations: the query text is
constant, only ``$name`` values change.  A :class:`PreparedStatement`
compiles such a query into one physical plan whose predicate tree holds
:class:`~repro.cypher.parameters.ParameterSlot` nodes instead of literals;
each :meth:`execute` call assigns a fresh value set to the shared
:class:`~repro.cypher.parameters.ParameterBinding` and re-runs the *same*
plan — no parsing, linting or planning on the hot path.

Bind-time validation reuses the static linter: the original AST is bound
eagerly with the candidate values and re-linted, so a value that makes a
predicate unsatisfiable or type-inconsistent (``p.name STARTS WITH 42``)
is rejected with the linter's structured diagnostics before any operator
runs.

Executions are serialized per statement (the binding is shared mutable
state); different statements — and different plain queries — still run
concurrently.  The query service hands out one statement object per
``(graph, query)`` for exactly this reason.
"""

from repro.analysis.diagnostics import QueryLintError
from repro.analysis.linter import lint_query
from repro.cypher.parameters import (
    ParameterBinding,
    bind_parameters,
    find_parameters,
    parameterize,
)
from repro.cypher.parser import parse
from repro.cypher.query_graph import QueryHandler
from repro.dataflow.cancellation import CancellationToken
from repro.locks import named_rlock


class PreparedStatement:
    """One compiled plan plus the machinery to rebind and re-execute it."""

    def __init__(self, runner, query):
        if not isinstance(query, str):
            raise TypeError("prepared statements need the query text")
        self.runner = runner
        self.text = query
        self._ast = parse(query)
        #: the ``$names`` the query declares, in sorted order
        self.parameter_names = tuple(sorted(find_parameters(self._ast)))
        self._binding = ParameterBinding(self.parameter_names)
        #: diagnostics from the most recent bind-time lint
        self.last_diagnostics = []  # guarded-by: _lock
        #: executions completed so far (monotone)
        self.executions = 0  # guarded-by: _lock
        self._lock = named_rlock("statement")

        if runner.lint_enabled:
            diagnostics = lint_query(self._ast, statistics=runner.statistics)
            if any(d.is_blocking for d in diagnostics):
                raise QueryLintError(diagnostics, query_text=query)
            self.last_diagnostics = diagnostics

        slotted = parameterize(self._ast, self._binding)
        self.handler = QueryHandler(slotted)
        planner = runner.planner_cls(
            runner.graph,
            self.handler,
            runner.statistics,
            vertex_strategy=runner.vertex_strategy,
            edge_strategy=runner.edge_strategy,
        )
        self.root = planner.plan()
        if runner.prune:
            from .planning import prune_plan

            self.root = prune_plan(
                self.root,
                handler=self.handler,
                vertex_strategy=runner.vertex_strategy,
                edge_strategy=runner.edge_strategy,
            )
        #: the statically proven worst-case cost of this plan; the query
        #: service's admission control compares it against its configured
        #: bound before running a single operator
        from repro.analysis.costbound import certify_plan

        self.cost_certificate = certify_plan(self.root, runner.statistics)
        if runner.verify_plans:
            from repro.analysis.verifier import verify_plan

            verify_plan(
                self.root,
                handler=self.handler,
                vertex_strategy=runner.vertex_strategy,
                edge_strategy=runner.edge_strategy,
            )
        self.sanitizer = None
        if runner.sanitize:
            from repro.analysis.sanitizer import (
                DEFAULT_SAMPLE_EVERY,
                EmbeddingSanitizer,
            )

            self.sanitizer = EmbeddingSanitizer(
                vertex_strategy=runner.vertex_strategy,
                edge_strategy=runner.edge_strategy,
                mode="collect" if runner.sanitize == "collect" else "raise",
                sample_every=(
                    DEFAULT_SAMPLE_EVERY
                    if runner.sanitize == "sample"
                    else None
                ),
            ).attach(self.root)

    # Binding ----------------------------------------------------------------

    def validate(self, parameters):
        """Bind-time diagnostics for ``parameters`` without executing.

        Binds the original AST eagerly with the candidate values and runs
        the full static linter over the result, so the interval/type
        solver sees the concrete literals.  Returns the diagnostics;
        raises :class:`QueryLintError` when any is blocking.
        """
        bound = bind_parameters(self._ast, parameters or {})
        diagnostics = lint_query(bound, statistics=self.runner.statistics)
        if any(d.is_blocking for d in diagnostics):
            raise QueryLintError(diagnostics, query_text=self.text)
        return diagnostics

    # Execution --------------------------------------------------------------

    def run(self, parameters=None, timeout=None, cancellation=None,
            validate=None):
        """``(embeddings, meta, job_metrics)`` for one binding of the plan.

        ``timeout`` (seconds) installs a per-execution deadline;
        ``cancellation`` passes an externally controlled token instead.
        ``validate`` defaults to the runner's ``lint`` setting.
        """
        if validate is None:
            validate = self.runner.lint_enabled
        diagnostics = self.validate(parameters) if validate else None
        token = cancellation
        if token is None and timeout is not None:
            token = CancellationToken.with_timeout(timeout)
        with self._lock:
            if diagnostics is not None:
                self.last_diagnostics = diagnostics
            self._binding.assign(parameters or {})
            environment = self.runner.graph.environment
            # instrumentation baked into this plan decides the mode, not the
            # runner's *current* sanitize flag (they may have diverged)
            fused = False if self.sanitizer is not None else self.runner.fused
            columnar = (
                False if self.sanitizer is not None else self.runner.columnar
            )
            with environment.job("prepared", cancellation=token) as metrics:
                embeddings = self.root.evaluate().collect(
                    fused=fused, columnar=columnar
                )
            self.executions += 1
            return embeddings, self.root.meta, metrics

    def execute_embeddings(self, parameters=None, timeout=None,
                           cancellation=None, validate=None):
        """``(embeddings, meta)`` for one binding of the prepared plan."""
        embeddings, meta, _ = self.run(
            parameters, timeout=timeout, cancellation=cancellation,
            validate=validate,
        )
        return embeddings, meta

    def execute_table(self, parameters=None, timeout=None, cancellation=None,
                      validate=None):
        """Neo4j-style rows honouring the RETURN clause (see the runner)."""
        embeddings, meta = self.execute_embeddings(
            parameters, timeout=timeout, cancellation=cancellation,
            validate=validate,
        )
        return self.runner.build_rows(self.handler, embeddings, meta)

    def execute(self, parameters=None, attach_bindings=True, timeout=None,
                cancellation=None, validate=None):
        """The EPGM operator result: a GraphCollection of matches."""
        embeddings, meta = self.execute_embeddings(
            parameters, timeout=timeout, cancellation=cancellation,
            validate=validate,
        )
        return self.runner._build_collection(embeddings, meta, attach_bindings)

    # Introspection ----------------------------------------------------------

    def explain(self):
        return self.root.explain()

    @property
    def binding_generation(self):
        return self._binding.generation

    def __repr__(self):
        with self._lock:
            executions = self.executions
        return "PreparedStatement(%r, parameters=%s, executions=%d)" % (
            self.text.strip().splitlines()[0][:40] if self.text.strip() else "",
            list(self.parameter_names),
            executions,
        )

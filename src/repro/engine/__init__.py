"""The Cypher query engine — the paper's primary contribution.

Embedding data structure (§3.3), physical query operators (§3.1),
statistics and greedy cost-based planning (§3.2), morphism semantics
(§2.2/§2.3), and the runner that executes a query end-to-end.
"""

from .export import embeddings_to_arrays, result_table
from .embedding import (
    ElementBindings,
    Embedding,
    EmbeddingBindings,
    EmbeddingMetaData,
)
from .morphism import (
    DEFAULT_EDGE_STRATEGY,
    DEFAULT_VERTEX_STRATEGY,
    MatchStrategy,
    embedding_satisfies_morphism,
)
from .naive import NaiveMatcher, canonical_row, canonical_rows_from_embeddings
from .operators import (
    CartesianEmbeddings,
    ExpandEmbeddings,
    JoinEmbeddings,
    PhysicalOperator,
    ProjectEmbeddings,
    SelectAndProjectEdges,
    SelectAndProjectVertices,
    SelectEmbeddings,
)
from .planning import (
    CardinalityEstimator,
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
    PlanningError,
)
from .prepared import PreparedStatement
from .runner import DEFAULT_PLAN_CACHE_SIZE, CypherRunner
from .statistics import GraphStatistics

__all__ = [
    "CardinalityEstimator",
    "CartesianEmbeddings",
    "CypherRunner",
    "DEFAULT_PLAN_CACHE_SIZE",
    "PreparedStatement",
    "ExhaustivePlanner",
    "DEFAULT_EDGE_STRATEGY",
    "DEFAULT_VERTEX_STRATEGY",
    "ElementBindings",
    "Embedding",
    "EmbeddingBindings",
    "EmbeddingMetaData",
    "ExpandEmbeddings",
    "GraphStatistics",
    "GreedyPlanner",
    "JoinEmbeddings",
    "LeftDeepPlanner",
    "MatchStrategy",
    "NaiveMatcher",
    "PhysicalOperator",
    "PlanningError",
    "ProjectEmbeddings",
    "SelectAndProjectEdges",
    "SelectAndProjectVertices",
    "SelectEmbeddings",
    "canonical_row",
    "embeddings_to_arrays",
    "result_table",
    "canonical_rows_from_embeddings",
    "embedding_satisfies_morphism",
]

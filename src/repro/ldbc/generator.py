"""Deterministic LDBC-SNB-like social network generator.

Substitute for the LDBC DATAGEN (see DESIGN.md §2): scale factor is a
linear multiplier on person count, `knows` out-degrees follow a power law
with preferential attachment (skewed in-degrees → the load imbalance of
paper §4.1), reply trees give Comment→…→Post chains for the ``replyOf``
variable-length queries, and ``firstName`` values are Zipf-distributed so
the selectivity classes of Figure 5 exist by construction.
"""

from repro.epgm import Edge, GradoopIdFactory, GraphHead, Vertex
from repro.epgm.indexed import IndexedLogicalGraph
from repro.epgm.logical_graph import LogicalGraph

from . import schema
from .distributions import (
    Zipf,
    make_rng,
    poisson,
    power_law_degree,
    preferential_targets,
)

#: Persons at scale factor 1.  LDBC's absolute sizes are cluster-scale;
#: ours are laptop-scale with the same *relative* growth per SF.
PERSONS_PER_SCALE_FACTOR = 600


class LDBCDataset:
    """The generated elements plus convenience accessors."""

    def __init__(self, graph_head, vertices, edges, first_name_ranks):
        self.graph_head = graph_head
        self.vertices = vertices
        self.edges = edges
        self.first_name_ranks = first_name_ranks

    def counts_by_label(self):
        counts = {}
        for vertex in self.vertices:
            counts[vertex.label] = counts.get(vertex.label, 0) + 1
        for edge in self.edges:
            counts[edge.label] = counts.get(edge.label, 0) + 1
        return counts

    def first_name(self, selectivity):
        """A firstName whose frequency class matches the paper's classes.

        ``'low'`` selectivity → the most common name (largest result set),
        ``'medium'`` → a mid-rank name, ``'high'`` → a rare name.
        """
        ranked = sorted(
            self.first_name_ranks.items(), key=lambda item: -item[1]
        )
        if not ranked:
            raise ValueError("no persons generated")
        if selectivity == "low":
            return ranked[0][0]
        if selectivity == "medium":
            return ranked[min(len(ranked) // 6 + 1, len(ranked) - 1)][0]
        if selectivity == "high":
            return ranked[-1][0]
        raise ValueError("selectivity must be 'high', 'medium' or 'low'")

    def to_logical_graph(self, environment, indexed=False, partitioning=None):
        if indexed:
            return IndexedLogicalGraph.from_collections(
                environment, self.vertices, self.edges, graph_head=self.graph_head
            )
        return LogicalGraph.from_collections(
            environment,
            self.vertices,
            self.edges,
            graph_head=self.graph_head,
            partitioning=partitioning,
        )


class LDBCGenerator:
    """Generates one dataset; fully determined by (scale_factor, seed)."""

    def __init__(self, scale_factor=0.1, seed=42):
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self.person_count = max(int(PERSONS_PER_SCALE_FACTOR * scale_factor), 10)

    # Element counts derived from the person count -----------------------------

    @property
    def city_count(self):
        return min(max(self.person_count // 40, 3), len(schema.CITY_NAMES))

    @property
    def university_count(self):
        return min(max(self.person_count // 80, 2), len(schema.UNIVERSITY_NAMES))

    @property
    def tag_count(self):
        return min(max(self.person_count // 12, 5), len(schema.TAG_NAMES))

    @property
    def forum_count(self):
        return max(self.person_count // 6, 2)

    # ----------------------------------------------------------------------------

    def generate(self):
        ids = GradoopIdFactory(start=1)
        head = GraphHead(
            ids.next_id(),
            label="social_network",
            properties={"scaleFactor": float(self.scale_factor), "seed": self.seed},
        )
        vertices = []
        edges = []

        cities = self._make_simple(ids, schema.CITY, schema.CITY_NAMES, self.city_count)
        universities = self._make_simple(
            ids, schema.UNIVERSITY, schema.UNIVERSITY_NAMES, self.university_count
        )
        tags = self._make_simple(ids, schema.TAG, schema.TAG_NAMES, self.tag_count)
        vertices.extend(cities + universities + tags)

        persons, first_name_ranks = self._make_persons(ids)
        vertices.extend(persons)

        forums = self._make_forums(ids)
        vertices.extend(forums)

        knows_edges = self._make_knows(ids, persons)
        edges.extend(knows_edges)
        edges.extend(self._make_person_city(ids, persons, cities))
        edges.extend(self._make_study_at(ids, persons, universities))
        edges.extend(self._make_interests(ids, persons, tags))
        edges.extend(self._make_forum_membership(ids, persons, forums))

        messages, message_edges = self._make_messages(ids, persons, knows_edges)
        vertices.extend(messages)
        edges.extend(message_edges)

        return LDBCDataset(head, vertices, edges, first_name_ranks)

    # Vertices --------------------------------------------------------------------

    def _make_simple(self, ids, label, names, count):
        return [
            Vertex(ids.next_id(), label=label, properties={"name": names[index]})
            for index in range(count)
        ]

    def _make_persons(self, ids):
        rng = make_rng(self.seed, "persons")
        name_zipf = Zipf(len(schema.FIRST_NAMES), exponent=1.1)
        persons = []
        ranks = {}
        for index in range(self.person_count):
            first_name = schema.FIRST_NAMES[name_zipf.sample(rng)]
            ranks[first_name] = ranks.get(first_name, 0) + 1
            persons.append(
                Vertex(
                    ids.next_id(),
                    label=schema.PERSON,
                    properties={
                        "firstName": first_name,
                        "lastName": rng.choice(schema.LAST_NAMES),
                        "gender": schema.GENDERS[index % 2],
                        "creationDate": rng.randint(
                            schema.CREATION_DATE_MIN, schema.CREATION_DATE_MAX
                        ),
                    },
                )
            )
        return persons, ranks

    def _make_forums(self, ids):
        rng = make_rng(self.seed, "forums")
        return [
            Vertex(
                ids.next_id(),
                label=schema.FORUM,
                properties={
                    "title": "Forum %d" % index,
                    "creationDate": rng.randint(
                        schema.CREATION_DATE_MIN, schema.CREATION_DATE_MAX
                    ),
                },
            )
            for index in range(self.forum_count)
        ]

    # Edges -----------------------------------------------------------------------

    def _make_knows(self, ids, persons):
        """Power-law out-degrees, preferential-attachment targets."""
        rng = make_rng(self.seed, "knows")
        edges = []
        n = len(persons)
        for index, person in enumerate(persons):
            degree = power_law_degree(rng, average=5.0, maximum=max(n // 2, 1))
            for target_index in preferential_targets(rng, degree, n):
                if target_index == index:
                    continue
                edges.append(
                    Edge(
                        ids.next_id(),
                        label=schema.KNOWS,
                        source_id=person.id,
                        target_id=persons[target_index].id,
                        properties={
                            "creationDate": rng.randint(
                                schema.CREATION_DATE_MIN, schema.CREATION_DATE_MAX
                            )
                        },
                    )
                )
        return edges

    def _make_person_city(self, ids, persons, cities):
        rng = make_rng(self.seed, "cities")
        city_zipf = Zipf(len(cities), exponent=0.8)
        return [
            Edge(
                ids.next_id(),
                label=schema.IS_LOCATED_IN,
                source_id=person.id,
                target_id=cities[city_zipf.sample(rng)].id,
            )
            for person in persons
        ]

    def _make_study_at(self, ids, persons, universities):
        rng = make_rng(self.seed, "study")
        uni_zipf = Zipf(len(universities), exponent=0.8)
        edges = []
        for person in persons:
            if rng.random() >= 0.45:
                continue
            edges.append(
                Edge(
                    ids.next_id(),
                    label=schema.STUDY_AT,
                    source_id=person.id,
                    target_id=universities[uni_zipf.sample(rng)].id,
                    properties={
                        "classYear": rng.randint(
                            schema.CLASS_YEAR_MIN, schema.CLASS_YEAR_MAX
                        )
                    },
                )
            )
        return edges

    def _make_interests(self, ids, persons, tags):
        rng = make_rng(self.seed, "interests")
        tag_zipf = Zipf(len(tags), exponent=1.0)
        edges = []
        for person in persons:
            interest_count = poisson(rng, 2.5)
            chosen = set()
            for _ in range(interest_count):
                chosen.add(tag_zipf.sample(rng))
            for tag_index in sorted(chosen):
                edges.append(
                    Edge(
                        ids.next_id(),
                        label=schema.HAS_INTEREST,
                        source_id=person.id,
                        target_id=tags[tag_index].id,
                    )
                )
        return edges

    def _make_forum_membership(self, ids, persons, forums):
        rng = make_rng(self.seed, "forums-members")
        edges = []
        n = len(persons)
        for forum in forums:
            moderator = persons[rng.randrange(n)]
            edges.append(
                Edge(
                    ids.next_id(),
                    label=schema.HAS_MODERATOR,
                    source_id=forum.id,
                    target_id=moderator.id,
                )
            )
            member_count = max(poisson(rng, 6.0), 1)
            for member_index in preferential_targets(rng, member_count, n):
                edges.append(
                    Edge(
                        ids.next_id(),
                        label=schema.HAS_MEMBER,
                        source_id=forum.id,
                        target_id=persons[member_index].id,
                    )
                )
        return edges

    def _make_messages(self, ids, persons, knows_edges):
        """Posts with reply trees of Comments (``replyOf`` chains).

        Commenters are biased toward friends of the thread's creator —
        replies in a social network come mostly from one's neighbourhood,
        and query 3 (friends that replied to a post) depends on it.
        """
        rng = make_rng(self.seed, "messages")
        vertices = []
        edges = []
        n = len(persons)
        person_by_id = {person.id: person for person in persons}
        friends = {}
        for edge in knows_edges:
            friends.setdefault(edge.source_id, []).append(
                person_by_id[edge.target_id]
            )
        for person in persons:
            for _ in range(poisson(rng, 1.2)):
                post = Vertex(
                    ids.next_id(),
                    label=schema.POST,
                    properties={
                        "content": "post by %s"
                        % person.get_property("firstName").raw(),
                        "creationDate": rng.randint(
                            schema.CREATION_DATE_MIN, schema.CREATION_DATE_MAX
                        ),
                        "length": rng.randint(10, 500),
                    },
                )
                vertices.append(post)
                edges.append(
                    Edge(
                        ids.next_id(),
                        label=schema.HAS_CREATOR,
                        source_id=post.id,
                        target_id=person.id,
                    )
                )
                # reply tree rooted at the post
                frontier = [(post, 0)]
                while frontier:
                    parent, depth = frontier.pop()
                    if depth >= 6:
                        continue
                    replies = poisson(rng, 0.8 if depth == 0 else 0.5)
                    for _ in range(replies):
                        creator_friends = friends.get(person.id)
                        if creator_friends and rng.random() < 0.7:
                            commenter = creator_friends[
                                rng.randrange(len(creator_friends))
                            ]
                        else:
                            commenter = persons[rng.randrange(n)]
                        comment = Vertex(
                            ids.next_id(),
                            label=schema.COMMENT,
                            properties={
                                "content": "reply by %s"
                                % commenter.get_property("firstName").raw(),
                                "creationDate": rng.randint(
                                    schema.CREATION_DATE_MIN,
                                    schema.CREATION_DATE_MAX,
                                ),
                                "length": rng.randint(5, 200),
                            },
                        )
                        vertices.append(comment)
                        edges.append(
                            Edge(
                                ids.next_id(),
                                label=schema.HAS_CREATOR,
                                source_id=comment.id,
                                target_id=commenter.id,
                            )
                        )
                        edges.append(
                            Edge(
                                ids.next_id(),
                                label=schema.REPLY_OF,
                                source_id=comment.id,
                                target_id=parent.id,
                            )
                        )
                        frontier.append((comment, depth + 1))
        return vertices, edges


def generate_graph(environment, scale_factor=0.1, seed=42, indexed=False):
    """One-call convenience: generate and wrap as a logical graph."""
    dataset = LDBCGenerator(scale_factor, seed).generate()
    return dataset.to_logical_graph(environment, indexed=indexed)

"""Synthetic LDBC-SNB-like social network (DESIGN.md substitution table)."""

from . import schema
from .distributions import Zipf, poisson, power_law_degree, preferential_targets
from .generator import (
    LDBCDataset,
    LDBCGenerator,
    PERSONS_PER_SCALE_FACTOR,
    generate_graph,
)

__all__ = [
    "LDBCDataset",
    "LDBCGenerator",
    "PERSONS_PER_SCALE_FACTOR",
    "Zipf",
    "generate_graph",
    "poisson",
    "power_law_degree",
    "preferential_targets",
    "schema",
]

"""Value pools and schema constants for the synthetic LDBC-like network.

Covers exactly the SNB sub-schema the paper's six queries touch:

Vertices: Person, City, University, Tag, Forum, Post, Comment.
Edges: knows, hasCreator, replyOf, isLocatedIn, hasInterest, studyAt,
hasMember, hasModerator.
"""

# Vertex labels
PERSON = "Person"
CITY = "City"
UNIVERSITY = "University"
TAG = "Tag"
FORUM = "Forum"
POST = "Post"
COMMENT = "Comment"

# Edge labels
KNOWS = "knows"
HAS_CREATOR = "hasCreator"
REPLY_OF = "replyOf"
IS_LOCATED_IN = "isLocatedIn"
HAS_INTEREST = "hasInterest"
STUDY_AT = "studyAt"
HAS_MEMBER = "hasMember"
HAS_MODERATOR = "hasModerator"

#: First names drawn Zipf-distributed: rank 0 dominates (the "low
#: selectivity" predicate of the paper's Figure 5), the tail is rare.
FIRST_NAMES = [
    "Jan", "Maria", "Chen", "Ali", "Ivan", "Anna", "John", "Lena", "Omar",
    "Eva", "Luis", "Nina", "Karl", "Sara", "Max", "Ida", "Leo", "Mia",
    "Tom", "Zoe", "Ben", "Amy", "Kim", "Raj", "Liu", "Ana", "Per", "Uma",
    "Tim", "Fay", "Gus", "Lea", "Rex", "Kai", "Ash", "Ela", "Jon", "Isa",
    "Abe", "Noa", "Eli", "Ira", "Ole", "Sam", "Vi", "Lou", "Ava", "Gil",
    "Hal", "Joy", "Ned", "Pam", "Ron", "Sue", "Ty", "Val", "Wes", "Xan",
    "Yan", "Zed", "Bao", "Cyd", "Dov", "Edo", "Fen", "Gro", "Hux", "Ingo",
    "Jed", "Kip", "Lars", "Moe", "Nell", "Otis", "Pia", "Quin", "Rolf",
    "Sten", "Tova", "Ursa", "Vito", "Wim", "Xiu", "Ylva", "Zora", "Arlo",
    "Britt", "Cato", "Dag", "Ebba", "Frode", "Gerd", "Hild", "Inka",
    "Jorn", "Knut", "Liv", "Mads", "Nanna", "Odd",
]

LAST_NAMES = [
    "Smith", "Mueller", "Wang", "Khan", "Petrov", "Schmidt", "Garcia",
    "Kumar", "Sato", "Nielsen", "Rossi", "Novak", "Silva", "Kowalski",
    "Andersen", "Costa", "Haas", "Berg", "Vogel", "Lang",
]

CITY_NAMES = [
    "Leipzig", "Dresden", "Berlin", "Hamburg", "Munich", "Cologne",
    "Frankfurt", "Stuttgart", "Halle", "Erfurt", "Jena", "Chemnitz",
    "Magdeburg", "Rostock", "Kiel", "Kassel",
]

UNIVERSITY_NAMES = [
    "Uni Leipzig", "TU Dresden", "HU Berlin", "Uni Hamburg", "LMU Munich",
    "Uni Cologne", "Goethe Uni", "Uni Stuttgart", "MLU Halle", "Uni Erfurt",
]

TAG_NAMES = [
    "music", "sports", "politics", "movies", "science", "travel", "food",
    "art", "history", "books", "gaming", "photography", "fashion", "tech",
    "nature", "theatre", "cycling", "running", "chess", "coding", "space",
    "cars", "hiking", "sailing", "poetry", "jazz", "opera", "rock", "folk",
    "metal", "soul", "rap", "blues", "dance", "film", "anime", "comics",
    "design", "craft", "garden",
]

GENDERS = ["female", "male"]

#: creationDate values are epoch days; the range spans 2010..2015 like SNB.
CREATION_DATE_MIN = 14610  # 2010-01-01
CREATION_DATE_MAX = 16800  # 2015-12-31

CLASS_YEAR_MIN = 2000
CLASS_YEAR_MAX = 2020

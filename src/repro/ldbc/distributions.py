"""Seeded random distributions for the synthetic social network.

The LDBC-SNB generator "was designed to resemble the structural properties
of a real world social network: node degree distribution based on
power-laws and skewed property value distributions" (paper §4).  These
helpers reproduce both characteristics deterministically.
"""

import bisect
import math
import random


class Zipf:
    """Zipf-distributed sampling over ranks ``0..n-1``.

    ``P(rank k) ∝ 1 / (k+1)^exponent`` — rank 0 is the most frequent value.
    """

    def __init__(self, n, exponent=1.0):
        if n <= 0:
            raise ValueError("Zipf needs at least one rank")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (k + 1) ** exponent for k in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._cumulative = cumulative

    def sample(self, rng):
        """Draw one rank using the supplied ``random.Random``."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, rank):
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous


def power_law_degree(rng, average, exponent=2.5, maximum=None):
    """A discrete power-law-ish degree with the given mean.

    Uses the standard inverse-transform for a continuous Pareto with
    ``x_min`` chosen so the mean matches ``average``; values are rounded
    down and capped.
    """
    if average <= 0:
        return 0
    # Pareto mean = x_min * (a-1)/(a-2) for a > 2
    x_min = average * (exponent - 2.0) / (exponent - 1.0)
    x_min = max(x_min, 0.5)
    u = rng.random()
    value = x_min / (1.0 - u) ** (1.0 / (exponent - 1.0))
    degree = int(value)
    if maximum is not None:
        degree = min(degree, maximum)
    return degree


def pick_weighted(rng, cumulative_weights, items):
    """Pick one item using a precomputed cumulative weight list."""
    index = bisect.bisect_left(cumulative_weights, rng.random() * cumulative_weights[-1])
    index = min(index, len(items) - 1)
    return items[index]


def preferential_targets(rng, count, population, skew=3.0):
    """Pick ``count`` distinct targets from ``0..population-1``, biased
    toward low indices (the "celebrities"), power-law-ish.

    Produces the skewed in-degree distribution responsible for the load
    imbalance the paper observes on queries 5 and 6.
    """
    if population <= 0 or count <= 0:
        return []
    targets = set()
    attempts = 0
    while len(targets) < min(count, population) and attempts < count * 20:
        u = rng.random()
        index = int(population * u**skew)
        targets.add(min(index, population - 1))
        attempts += 1
    return sorted(targets)


def poisson(rng, lam):
    """Knuth's algorithm; fine for small lambda."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def make_rng(seed, *salt):
    """A ``random.Random`` seeded deterministically from seed + salt."""
    return random.Random("%r|%r" % (seed, salt))

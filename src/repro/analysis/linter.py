"""Static query linter: well-formedness and satisfiability checks.

Walks the parsed AST (not the compiled ``QueryHandler``, so that broken
queries still produce diagnostics instead of exceptions) and emits
:class:`~repro.analysis.diagnostics.Diagnostic` findings:

* symbol errors — unbound, shadowed and kind-conflicting variables
  (formalised as the binding rules of Marton et al., *Formalising
  openCypher Graph Queries in Relational Algebra*);
* satisfiability errors — conjunctions no element can satisfy, detected
  with a per-property interval/equality solver over the CNF;
* statistics warnings — labels and edge types with zero instances in the
  target graph (a guaranteed-empty result at run time);
* plan-shape warnings — Cartesian products from disconnected pattern
  components and silently capped unbounded ``*``-paths.

The contract with the planner, property-tested in the suite: a query the
linter passes without **errors** compiles on every planner into a plan
the :mod:`~repro.analysis.verifier` accepts.
"""

from repro.cypher.ast import (
    And,
    Comparison,
    FunctionCall,
    LabelRef,
    Literal,
    Not,
    Or,
    PropertyAccess,
    Query,
    VariableRef,
    Xor,
)
from repro.cypher.errors import CypherSemanticError
from repro.cypher.parser import parse
from repro.cypher.predicates import (
    label_predicate,
    property_map_predicate,
    to_cnf,
)
from repro.cypher.query_graph import DEFAULT_UPPER_BOUND
from repro.epgm.property_value import IncomparableError, PropertyValue

from .diagnostics import Diagnostic, sort_diagnostics

_RANGE_OPERATORS = {"<", "<=", ">", ">="}
_STRING_OPERATORS = {"STARTS WITH", "ENDS WITH", "CONTAINS"}


def lint_query(query, statistics=None):
    """All diagnostics for ``query`` (a string or parsed AST), sorted."""
    return QueryLinter(query, statistics=statistics).lint()


class QueryLinter:
    """One-shot analyzer; instantiate per query and call :meth:`lint`."""

    def __init__(self, query, statistics=None):
        if isinstance(query, str):
            self.text = query
            query = parse(query)
        else:
            self.text = None
        if not isinstance(query, Query):
            raise TypeError("expected query string or Query AST")
        self.ast = query
        self.statistics = statistics
        self._diagnostics = []
        # symbol tables populated by _collect_symbols
        self._vertex_occurrences = {}  # name -> [NodePattern]
        self._edge_occurrences = {}  # name -> [RelationshipPattern]

    # Public API ---------------------------------------------------------------

    def lint(self):
        self._collect_symbols()
        self._check_kind_conflicts()
        self._check_references()
        self._check_predicates()
        self._check_statistics()
        self._check_connectivity()
        self._check_path_bounds()
        return sort_diagnostics(self._diagnostics)

    # Infrastructure ------------------------------------------------------------

    def _emit(self, code, message, variable=None, span=None):
        self._diagnostics.append(
            Diagnostic.of(code, message, variable=variable, span=span)
        )

    @property
    def _known_variables(self):
        return set(self._vertex_occurrences) | set(self._edge_occurrences)

    # Symbol collection ----------------------------------------------------------

    def _collect_symbols(self):
        for path in self.ast.patterns:
            for node in path.nodes:
                if node.variable is not None:
                    self._vertex_occurrences.setdefault(node.variable, []).append(
                        node
                    )
            for rel in path.relationships:
                if rel.variable is not None:
                    self._edge_occurrences.setdefault(rel.variable, []).append(rel)

    def _check_kind_conflicts(self):
        for name in set(self._vertex_occurrences) & set(self._edge_occurrences):
            rel = self._edge_occurrences[name][0]
            self._emit(
                "E103",
                "variable %r is used for both a vertex and an edge" % name,
                variable=name,
                span=rel.span,
            )
        for name, occurrences in self._edge_occurrences.items():
            if len(occurrences) > 1:
                self._emit(
                    "E104",
                    "edge variable %r is bound by %d relationships; reusing "
                    "an edge variable is not allowed"
                    % (name, len(occurrences)),
                    variable=name,
                    span=occurrences[1].span,
                )

    # Reference checks ----------------------------------------------------------

    def _expression_references(self, expression, out):
        """Collect (variable, span) references from a WHERE expression."""
        if isinstance(expression, (And, Or, Xor)):
            self._expression_references(expression.left, out)
            self._expression_references(expression.right, out)
        elif isinstance(expression, Not):
            self._expression_references(expression.operand, out)
        elif isinstance(expression, Comparison):
            self._expression_references(expression.left, out)
            self._expression_references(expression.right, out)
        elif isinstance(expression, PropertyAccess):
            out.append((expression.variable, expression.span))
        elif isinstance(expression, VariableRef):
            out.append((expression.name, expression.span))
        elif isinstance(expression, LabelRef):
            out.append((expression.variable, expression.span))
        elif isinstance(expression, FunctionCall):
            if expression.argument is not None:
                self._expression_references(expression.argument, out)
        # Literals and Parameters bind nothing.

    def _check_references(self):
        known = self._known_variables
        if self.ast.where is not None:
            references = []
            self._expression_references(self.ast.where, references)
            reported = set()
            for name, span in references:
                if name not in known and name not in reported:
                    reported.add(name)
                    self._emit(
                        "E101",
                        "WHERE references variable %r which is not bound in "
                        "MATCH" % name,
                        variable=name,
                        span=span,
                    )
        returns = self.ast.returns
        if returns is None:
            self._check_unused(set())
            return
        referenced = []
        for item in returns.items:
            self._expression_references(item.expression, referenced)
        for order in returns.order_by:
            self._expression_references(order.expression, referenced)
        reported = set()
        for name, span in referenced:
            if name not in known and name not in reported:
                reported.add(name)
                self._emit(
                    "E102",
                    "RETURN references variable %r which is not bound in "
                    "MATCH" % name,
                    variable=name,
                    span=span,
                )
        for item in returns.items:
            if item.alias is None or item.alias not in known:
                continue
            if (
                isinstance(item.expression, VariableRef)
                and item.expression.name == item.alias
            ):
                continue
            self._emit(
                "W403",
                "RETURN alias %r shadows the pattern variable of the same "
                "name" % item.alias,
                variable=item.alias,
                span=item.span,
            )
        used = {name for name, _ in referenced}
        if self.ast.where is not None:
            where_refs = []
            self._expression_references(self.ast.where, where_refs)
            used |= {name for name, _ in where_refs}
        self._check_unused(used, star=returns.star)

    def _check_unused(self, used, star=False):
        if star:
            return
        for name, occurrences in self._vertex_occurrences.items():
            # a vertex variable appearing in several node patterns joins them
            if len(occurrences) > 1 or name in used:
                continue
            if occurrences[0].labels or occurrences[0].properties:
                continue  # the occurrence constrains the match even if unread
            self._emit(
                "W404",
                "vertex variable %r is never referenced; use an anonymous "
                "node ()" % name,
                variable=name,
                span=occurrences[0].span,
            )
        for name, occurrences in self._edge_occurrences.items():
            if len(occurrences) > 1 or name in used:
                continue
            rel = occurrences[0]
            if rel.types or rel.properties or rel.is_variable_length:
                continue
            self._emit(
                "W404",
                "edge variable %r is never referenced; use an anonymous "
                "relationship" % name,
                variable=name,
                span=rel.span,
            )

    # Predicate satisfiability ----------------------------------------------------

    def _element_cnf(self):
        """The full per-query CNF the compiler would build, or None."""
        try:
            cnf = to_cnf(self.ast.where)
        except CypherSemanticError as exc:
            self._emit("E105", str(exc), span=getattr(exc, "span", None))
            return None
        for name, occurrences in self._vertex_occurrences.items():
            for node in occurrences:
                if node.labels:
                    cnf = cnf.and_(label_predicate(name, node.labels))
                if node.properties:
                    cnf = cnf.and_(property_map_predicate(name, node.properties))
        for name, occurrences in self._edge_occurrences.items():
            for rel in occurrences:
                if rel.types:
                    cnf = cnf.and_(label_predicate(name, rel.types))
                if rel.properties:
                    cnf = cnf.and_(property_map_predicate(name, rel.properties))
        return cnf

    def _check_predicates(self):
        cnf = self._element_cnf()
        if cnf is None:
            return
        solver = _ConjunctionSolver()
        for clause in cnf.clauses:
            if len(clause.atoms) == 1 and not clause.atoms[0].negated:
                comparison = clause.atoms[0].comparison
                finding = solver.add(comparison)
                if finding is not None:
                    code, message, variable = finding
                    self._emit(
                        code, message, variable=variable,
                        span=_comparison_span(comparison),
                    )
            else:
                # disjunctions of label atoms still constrain one variable
                labels = _label_alternation(clause)
                if labels is not None:
                    variable, allowed = labels
                    finding = solver.add_label_set(variable, allowed)
                    if finding is not None:
                        code, message = finding
                        self._emit(code, message, variable=variable)
        for code, message, variable in solver.close():
            self._emit(code, message, variable=variable)

    # Statistics ---------------------------------------------------------------

    def _check_statistics(self):
        statistics = self.statistics
        if statistics is None:
            return
        seen_vertex_labels = set()
        for name, occurrences in self._vertex_occurrences.items():
            for node in occurrences:
                key = (name, tuple(node.labels))
                if not node.labels or key in seen_vertex_labels:
                    continue
                seen_vertex_labels.add(key)
                if statistics.vertices_with_labels(node.labels) == 0:
                    self._emit(
                        "W301",
                        "no vertices with label%s %s exist in the graph; "
                        "the result is empty"
                        % (
                            "s" if len(node.labels) > 1 else "",
                            "|".join(node.labels),
                        ),
                        variable=name,
                        span=node.span,
                    )
        for path in self.ast.patterns:
            for node in path.nodes:
                if node.variable is None and node.labels:
                    if statistics.vertices_with_labels(node.labels) == 0:
                        self._emit(
                            "W301",
                            "no vertices with label %s exist in the graph; "
                            "the result is empty" % "|".join(node.labels),
                            span=node.span,
                        )
            for rel in path.relationships:
                if rel.types and statistics.edges_with_labels(rel.types) == 0:
                    self._emit(
                        "W302",
                        "no edges with type %s exist in the graph; the "
                        "result is empty" % "|".join(rel.types),
                        variable=rel.variable,
                        span=rel.span,
                    )

    # Pattern shape --------------------------------------------------------------

    def _check_connectivity(self):
        parent = {}

        def find(item):
            root = item
            while parent[root] != root:
                root = parent[root]
            while parent[item] != root:
                parent[item], item = root, parent[item]
            return root

        def union(left, right):
            parent.setdefault(left, left)
            parent.setdefault(right, right)
            parent[find(left)] = find(right)

        anonymous = 0
        component_count = 0
        for path in self.ast.patterns:
            names = []
            for node in path.nodes:
                if node.variable is not None:
                    names.append(node.variable)
                else:
                    names.append("__anon%d" % anonymous)
                    anonymous += 1
            for name in names:
                parent.setdefault(name, name)
            for index in range(1, len(names)):
                union(names[index - 1], names[index])
        roots = {find(name) for name in parent}
        component_count = len(roots)
        if component_count > 1:
            self._emit(
                "W401",
                "the MATCH pattern has %d disconnected components; they "
                "combine as a Cartesian product whose size is the product "
                "of the component result sizes" % component_count,
            )

    def _check_path_bounds(self):
        for path in self.ast.patterns:
            for rel in path.relationships:
                if rel.is_variable_length and rel.upper is None:
                    self._emit(
                        "W402",
                        "variable-length path %s has no upper bound; "
                        "traversal is capped at %d hops"
                        % (
                            "*%d.." % rel.lower,
                            DEFAULT_UPPER_BOUND,
                        ),
                        variable=rel.variable,
                        span=rel.span,
                    )


# Satisfiability solver ---------------------------------------------------------


def _comparison_span(comparison):
    for side in (comparison.left, comparison.right):
        span = getattr(side, "span", None)
        if span is not None:
            return span
    return comparison.span


def _type_class(value):
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "list"
    return "other"


class _PropertyState:
    """Accumulated definite constraints on one ``variable.key``."""

    __slots__ = (
        "eq", "lower", "lower_strict", "upper", "upper_strict",
        "not_equal", "is_null", "not_null", "types", "in_lists",
    )

    def __init__(self):
        self.eq = None  # PropertyValue
        self.lower = None  # (PropertyValue, strict)
        self.lower_strict = False
        self.upper = None
        self.upper_strict = False
        self.not_equal = []
        self.is_null = False
        self.not_null = False
        self.types = set()  # required type classes; >1 entries = conflict
        self.in_lists = []


class _ConjunctionSolver:
    """Detects unsatisfiable conjunctions of single-atom clauses.

    Feed it the comparisons of every one-atom CNF clause; it reports a
    contradiction the moment one becomes provable.  Sound but deliberately
    incomplete: disjunctions (other than label alternations) are ignored,
    so it never calls a satisfiable query unsatisfiable.
    """

    def __init__(self):
        self._properties = {}  # (variable, key) -> _PropertyState
        self._labels = {}  # variable -> allowed label set
        self._reported = set()

    # Label handling -------------------------------------------------------------

    def add_label_set(self, variable, labels):
        allowed = self._labels.get(variable)
        if allowed is None:
            self._labels[variable] = set(labels)
            return None
        merged = allowed & set(labels)
        self._labels[variable] = merged
        if not merged and ("label", variable) not in self._reported:
            self._reported.add(("label", variable))
            return (
                "E202",
                "variable %r would need labels from %s and %s at the same "
                "time; no element satisfies both"
                % (variable, "|".join(sorted(allowed)), "|".join(sorted(labels))),
            )
        return None

    # Comparison handling --------------------------------------------------------

    def add(self, comparison):
        """Returns ``(code, message, variable)`` on contradiction else None."""
        left, right, operator = comparison.left, comparison.right, comparison.operator

        if isinstance(left, LabelRef) and isinstance(right, Literal):
            if operator == "=":
                finding = self.add_label_set(left.variable, {right.value})
                if finding is not None:
                    return finding + (left.variable,)
            return None

        if isinstance(left, Literal) and isinstance(right, Literal):
            return self._constant_comparison(comparison)

        if isinstance(left, PropertyAccess):
            prop, other = left, right
        elif isinstance(right, PropertyAccess) and operator in ("=", "<>"):
            prop, other = right, left  # symmetric operators only
        elif isinstance(right, PropertyAccess) and operator in _RANGE_OPERATORS:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
            return self.add(Comparison(flipped, right, left, span=comparison.span))
        else:
            return None

        if operator == "IS NULL":
            return self._set_null(prop, True)
        if operator == "IS NOT NULL":
            return self._set_null(prop, False)
        if not isinstance(other, Literal):
            return None  # property-to-property: out of scope
        if other.value is None:
            return (
                "E201",
                "%s %s NULL is never true; use IS NULL" % (prop, operator),
                prop.variable,
            )
        if operator == "IN":
            return self._add_in(prop, other)
        if operator in _STRING_OPERATORS:
            return self._require_type(prop, "string", operator)
        if operator == "=":
            return self._add_equality(prop, other)
        if operator == "<>":
            return self._add_inequality(prop, other)
        if operator in _RANGE_OPERATORS:
            return self._add_range(prop, operator, other)
        return None

    def close(self):
        """Final interval checks once every conjunct has been added."""
        findings = []
        for (variable, key), state in self._properties.items():
            if state.lower is None or state.upper is None:
                continue
            if ("prop", variable, key) in self._reported:
                continue
            verdict = self._interval_empty(state)
            if verdict is not None:
                self._reported.add(("prop", variable, key))
                findings.append((verdict[0], verdict[1], variable))
        return findings

    # Internals ------------------------------------------------------------------

    def _state(self, prop):
        return self._properties.setdefault(
            (prop.variable, prop.key), _PropertyState()
        )

    def _constant_comparison(self, comparison):
        left_value = PropertyValue(comparison.left.value)
        right_value = PropertyValue(comparison.right.value)
        operator = comparison.operator
        if operator in ("=", "<>"):
            result = (left_value == right_value) == (operator == "=")
            if not result:
                return (
                    "E201",
                    "constant comparison %s is always false" % (comparison,),
                    None,
                )
            return None
        if operator in _RANGE_OPERATORS:
            try:
                outcome = left_value.compare(right_value)
            except IncomparableError:
                return (
                    "E105",
                    "constant comparison %s mixes incomparable types %s and "
                    "%s" % (comparison, left_value.type_name,
                            right_value.type_name),
                    None,
                )
            satisfied = {
                "<": outcome < 0,
                "<=": outcome <= 0,
                ">": outcome > 0,
                ">=": outcome >= 0,
            }[operator]
            if not satisfied:
                return (
                    "E201",
                    "constant comparison %s is always false" % (comparison,),
                    None,
                )
        return None

    def _set_null(self, prop, to_null):
        state = self._state(prop)
        if to_null:
            state.is_null = True
        else:
            state.not_null = True
        if state.is_null and (
            state.not_null
            or state.eq is not None
            or state.lower is not None
            or state.upper is not None
            or state.in_lists
            or state.types
        ):
            return self._conflict(
                prop,
                "%s is required to be NULL and non-NULL at once" % (prop,),
            )
        return None

    def _require_type(self, prop, type_class, operator):
        state = self._state(prop)
        state.types.add(type_class)
        if state.is_null:
            return self._conflict(
                prop, "%s is required to be NULL but %r needs a value"
                % (prop, operator),
            )
        if len(state.types) > 1:
            return (
                "E105",
                "%s is required to be %s at the same time; no value "
                "satisfies every comparison"
                % (prop, " and ".join(sorted(state.types))),
                prop.variable,
            )
        return None

    def _add_in(self, prop, literal):
        values = literal.value
        if not isinstance(values, list):
            return None
        if not values:
            return self._conflict(
                prop, "%s IN [] is never true" % (prop,)
            )
        state = self._state(prop)
        state.in_lists.append([PropertyValue(item) for item in values])
        if state.eq is not None and all(
            state.eq != item for item in state.in_lists[-1]
        ):
            return self._conflict(
                prop,
                "%s = %s contradicts %s IN %s"
                % (prop, state.eq.raw(), prop, values),
            )
        return None

    def _add_equality(self, prop, literal):
        state = self._state(prop)
        value = PropertyValue(literal.value)
        if state.is_null:
            return self._conflict(
                prop, "%s is required to be NULL and equal to %r at once"
                % (prop, literal.value),
            )
        type_finding = self._require_type(prop, _type_class(literal.value), "=")
        if type_finding is not None:
            return type_finding
        if state.eq is not None and state.eq != value:
            return self._conflict(
                prop,
                "%s cannot equal both %r and %r" % (
                    prop, state.eq.raw(), literal.value
                ),
            )
        state.eq = value
        for other in state.not_equal:
            if other == value:
                return self._conflict(
                    prop,
                    "%s = %r contradicts %s <> %r"
                    % (prop, literal.value, prop, literal.value),
                )
        for in_list in state.in_lists:
            if all(value != item for item in in_list):
                return self._conflict(
                    prop,
                    "%s = %r contradicts an earlier IN list" % (
                        prop, literal.value
                    ),
                )
        return self._check_equality_against_range(prop, state)

    def _add_inequality(self, prop, literal):
        state = self._state(prop)
        value = PropertyValue(literal.value)
        state.not_equal.append(value)
        if state.eq is not None and state.eq == value:
            return self._conflict(
                prop,
                "%s = %r contradicts %s <> %r"
                % (prop, state.eq.raw(), prop, literal.value),
            )
        return None

    def _add_range(self, prop, operator, literal):
        state = self._state(prop)
        value = PropertyValue(literal.value)
        type_finding = self._require_type(
            prop, _type_class(literal.value), operator
        )
        if type_finding is not None:
            return type_finding
        if operator in (">", ">="):
            replace = state.lower is None or self._tighter(
                value, state.lower, prefer_larger=True
            )
            if replace:
                state.lower = value
                state.lower_strict = operator == ">"
            elif state.lower == value and operator == ">":
                state.lower_strict = True
        else:
            replace = state.upper is None or self._tighter(
                value, state.upper, prefer_larger=False
            )
            if replace:
                state.upper = value
                state.upper_strict = operator == "<"
            elif state.upper == value and operator == "<":
                state.upper_strict = True
        interval = self._interval_empty(state)
        if interval is not None:
            return self._conflict(prop, interval[1], code=interval[0])
        return self._check_equality_against_range(prop, state)

    @staticmethod
    def _tighter(candidate, incumbent, prefer_larger):
        try:
            outcome = candidate.compare(incumbent)
        except IncomparableError:
            return False
        return outcome > 0 if prefer_larger else outcome < 0

    def _interval_empty(self, state):
        if state.lower is None or state.upper is None:
            return None
        try:
            outcome = state.lower.compare(state.upper)
        except IncomparableError:
            return (
                "E105",
                "range bounds %r and %r have incomparable types"
                % (state.lower.raw(), state.upper.raw()),
            )
        if outcome > 0 or (
            outcome == 0 and (state.lower_strict or state.upper_strict)
        ):
            return (
                "E201",
                "the required range (%s%r, %r%s) is empty"
                % (
                    "(" if state.lower_strict else "[",
                    state.lower.raw(),
                    state.upper.raw(),
                    ")" if state.upper_strict else "]",
                ),
            )
        return None

    def _check_equality_against_range(self, prop, state):
        if state.eq is None:
            return None
        for bound, strict, below in (
            (state.lower, state.lower_strict, True),
            (state.upper, state.upper_strict, False),
        ):
            if bound is None:
                continue
            try:
                outcome = state.eq.compare(bound)
            except IncomparableError:
                return (
                    "E105",
                    "%s = %r cannot be compared with the range bound %r"
                    % (prop, state.eq.raw(), bound.raw()),
                    prop.variable,
                )
            if below and (outcome < 0 or (outcome == 0 and strict)):
                return self._conflict(
                    prop,
                    "%s = %r lies below the required lower bound %r"
                    % (prop, state.eq.raw(), bound.raw()),
                )
            if not below and (outcome > 0 or (outcome == 0 and strict)):
                return self._conflict(
                    prop,
                    "%s = %r lies above the required upper bound %r"
                    % (prop, state.eq.raw(), bound.raw()),
                )
        return None

    def _conflict(self, prop, message, code="E201"):
        key = ("prop", prop.variable, prop.key)
        if key in self._reported:
            return None
        self._reported.add(key)
        return (code, message, prop.variable)


def _label_alternation(clause):
    """``(variable, labels)`` if the clause is a pure label alternation."""
    variable = None
    labels = set()
    for atom in clause.atoms:
        comparison = atom.comparison
        if atom.negated or comparison.operator != "=":
            return None
        if not isinstance(comparison.left, LabelRef) or not isinstance(
            comparison.right, Literal
        ):
            return None
        if variable is None:
            variable = comparison.left.variable
        elif variable != comparison.left.variable:
            return None
        labels.add(comparison.right.value)
    if variable is None:
        return None
    return variable, labels

"""Explicit-state model checking for the worker wire protocols.

Layer 2 of ``repro wirecheck``: where :mod:`repro.analysis.protocol`
proves the two sides *speak the same vocabulary*, this module proves
the *conversations terminate correctly*.  A protocol is written down as
a :class:`Model` — named machines with hashable local states, guarded
transition rules, and bounded FIFO channels between them — and
:func:`check` exhaustively explores every interleaving of enabled
transitions with a visited-state set (plain breadth-first search, so
the first counterexample found is also a shortest one).

Three failure classes map onto the diagnostics registry:

* **W506 deadlock** — a reachable state that is not *accepting* (by
  default: some channel still holds messages) where no transition is
  enabled.  The protocol can wedge.
* **W507 lost message** — a send into a full channel whose overflow
  policy is ``"lose"``.  Channels default to ``"block"`` (the send rule
  is simply disabled until space frees up), matching pipes; ``"lose"``
  models fire-and-forget paths where a drop must be proven unreachable.
* **W508 invariant violation** — a reachable state failing a declared
  safety invariant (a callable over all machine states and channel
  contents returning an error string).

Counterexamples are rendered as numbered message-sequence listings —
the exact transition labels from the initial state to the violation —
so a finding reads like a reproduction recipe, not a state dump.  The
four shipped protocol models live in
:mod:`repro.analysis.wire_models`; each also ships *mutated* variants
re-planting the three hand-found PR 8 protocol bugs, which the test
suite requires this checker to catch.

The framework is deliberately tiny: states are whatever hashable
values the model chooses (frozen dataclasses, tuples), guards and
effects are plain functions, and the global state space is the cross
product of machine states and channel contents.  Keep models small —
exhaustive exploration is the point, and the shipped models all close
under a few thousand states.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "Channel",
    "CheckResult",
    "Model",
    "Rule",
    "check",
]


@dataclass(frozen=True)
class Channel:
    """One bounded FIFO channel declaration."""

    name: str
    capacity: int = 4
    #: ``"block"`` disables sends while full; ``"lose"`` drops the
    #: message and records a W507
    policy: str = "block"


@dataclass(frozen=True)
class Rule:
    """One guarded transition of one machine.

    ``kind`` is ``"internal"`` (guard/effect take the machine state) or
    ``"receive"`` (guard/effect take the state and the head message of
    ``channel``; the message is consumed when the rule fires).  Effects
    return ``(new_state, sends)`` where ``sends`` is an iterable of
    ``(channel_name, message)`` pairs, all applied atomically — one
    rule firing is one indivisible step, like one batched pipe send.
    """

    machine: str
    name: str
    kind: str
    guard: object
    effect: object
    channel: Optional[str] = None


class Model:
    """A protocol: machines, channels, rules and safety invariants."""

    def __init__(self, name):
        self.name = name
        self.machines = {}   # machine name → initial state
        self.channels = {}   # channel name → Channel
        self.rules = []
        self.invariants = []  # (name, fn(states, channels) → str | None)
        #: accepting predicate for deadlock checking; default: every
        #: channel drained (a quiescent protocol is allowed to stop)
        self.accepting = None

    # -- declaration ---------------------------------------------------------

    def machine(self, name, initial):
        self.machines[name] = initial
        return name

    def channel(self, name, capacity=4, policy="block"):
        self.channels[name] = Channel(name, capacity, policy)
        return name

    def internal(self, machine, name, guard, effect):
        self.rules.append(Rule(machine, name, "internal", guard, effect))

    def receive(self, machine, name, channel, guard, effect):
        self.rules.append(
            Rule(machine, name, "receive", guard, effect, channel)
        )

    def invariant(self, name, fn):
        self.invariants.append((name, fn))

    # -- state plumbing ------------------------------------------------------

    def initial_state(self):
        machines = tuple(sorted(self.machines))
        channels = tuple(sorted(self.channels))
        states = tuple(self.machines[name] for name in machines)
        contents = tuple(() for _ in channels)
        return _Global(self, machines, channels, states, contents)


class _Global:
    """One immutable global state: machine states + channel contents."""

    __slots__ = ("model", "machine_names", "channel_names", "states",
                 "contents")

    def __init__(self, model, machine_names, channel_names, states,
                 contents):
        self.model = model
        self.machine_names = machine_names
        self.channel_names = channel_names
        self.states = states
        self.contents = contents

    def key(self):
        return (self.states, self.contents)

    def machine_state(self, name):
        return self.states[self.machine_names.index(name)]

    def channel_contents(self, name):
        return self.contents[self.channel_names.index(name)]

    def state_view(self):
        return dict(zip(self.machine_names, self.states))

    def channel_view(self):
        return dict(zip(self.channel_names, self.contents))

    def apply(self, machine, new_state, sends):
        """Successor state after one rule firing; None when a blocking
        channel is full; ``(successor, lost)`` with the dropped
        messages otherwise."""
        states = list(self.states)
        states[self.machine_names.index(machine)] = new_state
        contents = list(self.contents)
        lost = []
        for channel_name, message in sends:
            index = self.channel_names.index(channel_name)
            channel = self.model.channels[channel_name]
            if len(contents[index]) >= channel.capacity:
                if channel.policy == "block":
                    return None
                lost.append((channel_name, message))
                continue
            contents[index] = contents[index] + (message,)
        return (
            _Global(self.model, self.machine_names, self.channel_names,
                    tuple(states), tuple(contents)),
            lost,
        )

    def consume(self, channel_name):
        index = self.channel_names.index(channel_name)
        contents = list(self.contents)
        head = contents[index][0]
        contents[index] = contents[index][1:]
        return head, _Global(
            self.model, self.machine_names, self.channel_names,
            self.states, tuple(contents),
        )


@dataclass
class CheckResult:
    """Exploration outcome: diagnostics plus the counterexample trace."""

    model: str
    diagnostics: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    states_explored: int = 0
    #: False when exploration stopped at ``max_states`` — the absence
    #: of findings is then *not* a proof
    complete: bool = True

    @property
    def ok(self):
        return not self.diagnostics

    def format_trace(self):
        if not self.trace:
            return "(violation in the initial state)"
        width = len(str(len(self.trace)))
        return "\n".join(
            "%*d. %s" % (width, index + 1, step)
            for index, step in enumerate(self.trace)
        )

    def format_summary(self):
        status = "ok" if self.ok else self.diagnostics[0].code
        suffix = "" if self.complete else " (bounded: state cap hit)"
        return "model %s: %s, %d state(s) explored%s" % (
            self.model, status, self.states_explored, suffix
        )


def _label(rule, message=None, extra=None):
    parts = ["%s.%s" % (rule.machine, rule.name)]
    if rule.kind == "receive":
        parts.append("recv %r from %s" % (message, rule.channel))
    if extra:
        parts.append(extra)
    return ": ".join(parts)


def _enabled(state):
    """Yield ``(rule, successor, label, lost)`` for every firing."""
    for rule in state.model.rules:
        local = state.machine_state(rule.machine)
        if rule.kind == "internal":
            if not rule.guard(local):
                continue
            new_state, sends = rule.effect(local)
            applied = state.apply(rule.machine, new_state, sends)
            if applied is None:
                continue
            successor, lost = applied
            yield rule, successor, _label(rule), lost
        else:
            contents = state.channel_contents(rule.channel)
            if not contents:
                continue
            message = contents[0]
            if not rule.guard(local, message):
                continue
            head, drained = state.consume(rule.channel)
            new_state, sends = rule.effect(local, head)
            applied = drained.apply(rule.machine, new_state, sends)
            if applied is None:
                continue
            successor, lost = applied
            yield rule, successor, _label(rule, message), lost


def _rebuild_trace(parents, key):
    steps = []
    while key is not None:
        entry = parents[key]
        if entry is None:
            break
        key, label = entry
        steps.append(label)
    steps.reverse()
    return steps


def check(model, max_states=100000):
    """Exhaustively explore ``model``; returns a :class:`CheckResult`.

    Stops at the first violation (BFS order, so the counterexample is
    minimal) or when the reachable state space — capped at
    ``max_states`` — is exhausted.
    """
    result = CheckResult(model=model.name)
    initial = model.initial_state()
    accepting = model.accepting or (
        lambda states, channels: not any(channels.values())
    )

    def violated(state):
        states = state.state_view()
        channels = state.channel_view()
        for name, fn in model.invariants:
            failure = fn(states, channels)
            if failure:
                return name, failure
        return None

    parents = {initial.key(): None}
    queue = deque([initial])
    failure = violated(initial)
    if failure is not None:
        result.diagnostics.append(Diagnostic.of(
            "W508",
            "model %s: invariant %r violated in the initial state: %s"
            % (model.name, failure[0], failure[1]),
        ))
        return result

    while queue:
        state = queue.popleft()
        result.states_explored += 1
        key = state.key()
        fired_any = False
        for rule, successor, label, lost in _enabled(state):
            fired_any = True
            successor_key = successor.key()
            is_new = successor_key not in parents
            if is_new:
                parents[successor_key] = (key, label)
            if lost:
                result.trace = _rebuild_trace(parents, key) + [label]
                for channel_name, message in lost:
                    result.diagnostics.append(Diagnostic.of(
                        "W507",
                        "model %s: message %r dropped on full channel "
                        "%s (policy 'lose')\n%s"
                        % (model.name, message, channel_name,
                           result.format_trace()),
                    ))
                return result
            if is_new:
                failure = violated(successor)
                if failure is not None:
                    result.trace = _rebuild_trace(parents, successor_key)
                    result.diagnostics.append(Diagnostic.of(
                        "W508",
                        "model %s: invariant %r violated: %s\n%s"
                        % (model.name, failure[0], failure[1],
                           result.format_trace()),
                    ))
                    return result
                if len(parents) <= max_states:
                    queue.append(successor)
                else:
                    result.complete = False
        if not fired_any and not accepting(
            state.state_view(), state.channel_view()
        ):
            result.trace = _rebuild_trace(parents, key)
            result.diagnostics.append(Diagnostic.of(
                "W506",
                "model %s: deadlock — no transition enabled in a "
                "non-accepting state\n%s"
                % (model.name, result.format_trace()),
            ))
            return result
    return result

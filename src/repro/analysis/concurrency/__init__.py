"""Concurrency correctness toolkit for the serving stack.

Three detectors, one per failure mode of hand-rolled lock discipline:

* :func:`racecheck_paths` / :class:`RaceChecker` — **static**
  lock-discipline linter (C3xx codes): parses our own source, reads the
  ``# guarded-by:`` annotations and reports unguarded shared-field
  access, statically inferable lock-order inversions, blocking calls
  under a lock and per-call locks.  Surfaced as ``repro racecheck``.
* :class:`~repro.locks.LockOrderWitness` — **runtime** lock-order
  witness (re-exported from :mod:`repro.locks`): records the global
  acquisition graph while the test suite runs and fails on cycles, i.e.
  deadlocks that never actually fired.
* :class:`InterleavingFuzzer` — **dynamic** seeded interleaving fuzzer:
  drives workloads through adversarial schedules and checks caller
  invariants afterwards.

The witness itself lives in the stdlib-only :mod:`repro.locks` (the
cache and server layers import it, so it must sit below the analysis
package); it is re-exported here so tooling has one import surface.
"""

from repro.locks import (
    InstrumentedLock,
    LockOrderError,
    LockOrderWitness,
    current_witness,
    install_witness,
    named_lock,
    named_rlock,
    uninstall_witness,
    witness_installed,
)

from .fuzzer import FuzzContext, InterleavingFuzzer, RaceFinding
from .racecheck import (
    RaceChecker,
    RaceReport,
    racecheck_paths,
    racecheck_source,
)

__all__ = [
    "FuzzContext",
    "InstrumentedLock",
    "InterleavingFuzzer",
    "LockOrderError",
    "LockOrderWitness",
    "RaceChecker",
    "RaceFinding",
    "RaceReport",
    "current_witness",
    "install_witness",
    "named_lock",
    "named_rlock",
    "racecheck_paths",
    "racecheck_source",
    "uninstall_witness",
    "witness_installed",
]

"""Deterministic interleaving fuzzer: seeded adversarial schedules.

Plain stress tests find races by luck; this module finds them by
*construction*.  Each schedule derives every decision from one seed:

* ``sys.setswitchinterval`` is set to a tiny schedule-specific value, so
  the interpreter preempts threads every few hundred bytecodes instead
  of every 5 ms — orders of magnitude more interleavings per second;
* worker code calls :meth:`FuzzContext.step` at its interesting points
  (between a read and the dependent write, before a cache probe, …).
  At seeded step indices *all* threads rendezvous on a barrier — forcing
  every worker into the critical region at the same instant — and at
  other seeded points a thread yields the GIL (``time.sleep(0)``),
  perturbing the arrival order;
* per-thread jitter decisions come from per-thread ``random.Random``
  instances derived from the schedule seed, so a failing schedule is
  reproducible from its ``(seed, schedule)`` pair alone.

Findings are *invariant violations*: after each schedule the caller's
``invariant`` callable inspects the shared state and raises
``AssertionError`` (or returns an error string) when the interleaving
corrupted it — lost updates, torn snapshots, missed cancellations.

Usage::

    fuzzer = InterleavingFuzzer(seed=7, schedules=20, threads=4)
    findings = fuzzer.run(
        setup=lambda: LRUCache(8),
        worker=lambda cache, ctx: do_lookups(cache, ctx),
        invariant=lambda cache: check_stats(cache),
    )
    assert not findings, findings[0]

The long, thorough configurations belong behind the ``stress`` pytest
marker (deselected from tier-1); the default settings keep one fuzz run
in the tens of milliseconds.
"""

import random
import sys
import threading
import time

__all__ = ["FuzzContext", "InterleavingFuzzer", "RaceFinding"]

#: default upper bound on the step index a barrier may be planted at
DEFAULT_HOT_RANGE = 24

#: how long a thread waits at a planted barrier before giving up —
#: schedules stay adversarial without deadlocking uneven workloads
BARRIER_TIMEOUT = 0.05


class RaceFinding:
    """One schedule whose invariant failed (or whose worker crashed)."""

    __slots__ = ("seed", "schedule", "kind", "message")

    def __init__(self, seed, schedule, kind, message):
        self.seed = seed
        self.schedule = schedule
        self.kind = kind  # "invariant" or "worker"
        self.message = message

    def __repr__(self):
        return "RaceFinding(seed=%d, schedule=%d, %s: %s)" % (
            self.seed, self.schedule, self.kind, self.message,
        )


class FuzzContext:
    """Per-schedule scheduling state shared by the worker threads.

    Workers receive one context and call :meth:`step` at the points
    where an adversarial scheduler could interleave them.  The context
    is also the reproducibility record: :attr:`trace` logs every
    scheduling action as ``(thread_index, step_index, action)``.
    """

    def __init__(self, seed, schedule, threads, hot_steps, yield_rate):
        self.seed = seed
        self.schedule = schedule
        self.threads = threads
        self.hot_steps = hot_steps
        self.yield_rate = yield_rate
        self._barrier = threading.Barrier(threads)
        self._local = threading.local()
        self._trace = []
        self._trace_lock = threading.Lock()

    def bind(self, thread_index):
        """Install this thread's deterministic decision stream."""
        self._local.index = thread_index
        self._local.steps = 0
        self._local.rng = random.Random(
            (self.seed * 1000003 + self.schedule) * 8191 + thread_index
        )

    @property
    def thread_index(self):
        """The calling worker's index (``None`` on unbound threads)."""
        return getattr(self._local, "index", None)

    @property
    def trace(self):
        with self._trace_lock:
            return list(self._trace)

    def _record(self, thread_index, step_index, action):
        with self._trace_lock:
            self._trace.append((thread_index, step_index, action))

    def step(self):
        """One potential preemption point in the worker's critical code."""
        index = getattr(self._local, "index", None)
        if index is None:  # unbound thread (e.g. pool worker): no-op
            return
        self._local.steps += 1
        count = self._local.steps
        if count in self.hot_steps:
            self._record(index, count, "barrier")
            try:
                self._barrier.wait(timeout=BARRIER_TIMEOUT)
            except threading.BrokenBarrierError:
                self._barrier.reset()
        elif self._local.rng.random() < self.yield_rate:
            self._record(index, count, "yield")
            time.sleep(0)

    def random(self):
        """This thread's seeded RNG (for workers that need choices)."""
        return self._local.rng


class InterleavingFuzzer:
    """Runs a workload under many seeded adversarial schedules."""

    def __init__(self, seed=0, schedules=20, threads=4,
                 hot_barriers=1, hot_range=DEFAULT_HOT_RANGE,
                 yield_rate=0.25):
        if threads < 2:
            raise ValueError("an interleaving fuzzer needs >= 2 threads")
        self.seed = seed
        self.schedules = schedules
        self.threads = threads
        self.hot_barriers = hot_barriers
        self.hot_range = hot_range
        self.yield_rate = yield_rate

    def _schedule_context(self, schedule):
        rng = random.Random(self.seed * 2654435761 + schedule)
        hot_steps = frozenset(
            rng.randrange(1, self.hot_range + 1)
            for _ in range(self.hot_barriers)
        )
        # 1 µs .. 100 µs: far below the 5 ms default, different per run
        switch_interval = 10.0 ** rng.uniform(-6.0, -4.0)
        context = FuzzContext(
            self.seed, schedule, self.threads, hot_steps, self.yield_rate
        )
        return context, switch_interval

    def run(self, setup, worker, invariant=None, teardown=None,
            schedules=None):
        """Fuzz one workload; returns the list of :class:`RaceFinding`.

        ``setup()`` builds fresh shared state per schedule;
        ``worker(state, context)`` runs on every thread (call
        ``context.step()`` at the interesting points);
        ``invariant(state)`` runs after the join and raises
        ``AssertionError`` / returns an error string on corruption;
        ``teardown(state)`` always runs last.
        """
        findings = []
        total = self.schedules if schedules is None else schedules
        original_interval = sys.getswitchinterval()
        try:
            for schedule in range(total):
                context, switch_interval = self._schedule_context(schedule)
                state = setup()
                errors = []
                sys.setswitchinterval(switch_interval)

                def run_worker(thread_index, context=context, state=state,
                               errors=errors):
                    context.bind(thread_index)
                    try:
                        worker(state, context)
                    except BaseException as exc:  # noqa: BLE001 — reported
                        errors.append("thread %d: %r" % (thread_index, exc))

                threads = [
                    threading.Thread(
                        target=run_worker, args=(index,),
                        name="fuzz-%d-%d" % (schedule, index), daemon=True,
                    )
                    for index in range(self.threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                sys.setswitchinterval(original_interval)

                for message in errors:
                    findings.append(RaceFinding(
                        self.seed, schedule, "worker", message
                    ))
                if invariant is not None and not errors:
                    try:
                        verdict = invariant(state)
                    except AssertionError as exc:
                        verdict = str(exc) or "invariant failed"
                    if verdict:
                        findings.append(RaceFinding(
                            self.seed, schedule, "invariant", str(verdict)
                        ))
                if teardown is not None:
                    teardown(state)
        finally:
            sys.setswitchinterval(original_interval)
        return findings

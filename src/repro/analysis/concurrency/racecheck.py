"""Static lock-discipline linter: the ``repro racecheck`` pass.

The serving layer's correctness rests on hand-rolled lock discipline;
this module checks that discipline *statically*, the way the query
linter checks Cypher.  It parses Python source with :mod:`ast`, reads
lightweight trailing-comment annotations, and reports structured
:class:`~repro.analysis.diagnostics.Diagnostic` findings with ``C3xx``
codes (``file:line`` in the message — these point at our own source, not
at query text).

Annotation syntax (trailing comments, one per line):

``# guarded-by: _lock``
    On a ``self.field = ...`` assignment: every read/write of ``field``
    outside ``__init__`` must happen inside ``with self._lock:`` (C301).
``# requires-lock: _lock``
    On a ``def`` line: the method is documented to be called with the
    lock already held; the body is checked as if it were.
``# unsynchronized: <reason>``
    On a ``self.field = ...`` assignment: acknowledged lock-free shared
    state (monotone flags, thread-locals, main-thread-only fields).
    Recorded, never flagged.
``# racecheck: ignore`` / ``# racecheck: ignore[C301,C303]``
    Suppress findings on this line (the escape hatch of last resort).

Checks:

* **C301** — a ``guarded-by`` field accessed without its lock held.
  Cross-object accesses resolve through constructor assignments
  (``self.stats = CacheStats()`` makes ``self.stats.hits`` check
  ``CacheStats``'s declared guard).
* **C302** — statically inferable lock-order inversions: the linter
  builds an acquisition graph from lexically nested ``with`` blocks plus
  one level of call/property expansion across classes, and reports every
  cycle.
* **C303** — blocking calls under a lock: ``time.sleep``, queue
  get/put, ``Event``/``Condition``/``Barrier`` waits, ``Future.result``
  on a just-submitted task, socket/subprocess I/O, ``serve_forever``.
* **C304** — a lock created *and* acquired inside one call (``with
  threading.Lock():`` or a local lock variable): it guards nothing.
* **C305** — a ``guarded-by`` annotation naming a lock attribute the
  class never creates.
* **C306** — blocking cross-process IPC under a lock: ``send``/
  ``recv``/``poll`` on a receiver that names a pipe connection
  (``conn``, ``*_conn``, ``pipe``).  A pipe send blocks when the OS
  buffer fills, so a lock held across it is held for as long as the
  *other process* cares to dawdle — a deadlock ingredient C303's
  in-process list cannot see.  More specific than C303, reported
  instead of it.  The worker pool's leaf-lock channel sends are the
  sanctioned exception, annotated ``# racecheck: ignore[C306]``.

The runtime complement is :mod:`repro.locks` (the lock-order witness)
and :mod:`repro.analysis.concurrency.fuzzer` (seeded interleaving
schedules); see ``docs/analysis.md``.
"""

import ast
import os
import re

from repro.analysis.diagnostics import CODES, Diagnostic

__all__ = [
    "RaceChecker",
    "RaceReport",
    "racecheck_paths",
    "racecheck_source",
]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_REQUIRES = re.compile(r"#\s*requires-lock:\s*([A-Za-z_]\w*)")
_UNSYNC = re.compile(r"#\s*unsynchronized:\s*(.+?)\s*$")
_IGNORE = re.compile(r"#\s*racecheck:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")

#: call targets that construct a lock object
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "named_lock", "named_rlock",
})

#: fully qualified call targets that block the calling thread
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection",
    "urllib.request.urlopen",
    "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "input",
})

#: method names that block regardless of the receiver
ALWAYS_BLOCKING_METHODS = frozenset({
    "serve_forever", "accept", "recv", "sendall",
})

#: Connection methods that perform (potentially blocking) pipe IPC
IPC_METHODS = frozenset({
    "send", "recv", "send_bytes", "recv_bytes", "poll",
})

#: method names that block on receivers of these constructor types
BLOCKING_METHODS_BY_TYPE = {
    "Queue": frozenset({"get", "put", "join"}),
    "LifoQueue": frozenset({"get", "put", "join"}),
    "PriorityQueue": frozenset({"get", "put", "join"}),
    "SimpleQueue": frozenset({"get", "put"}),
    "Event": frozenset({"wait"}),
    "Condition": frozenset({"wait", "wait_for"}),
    "Barrier": frozenset({"wait"}),
    "Thread": frozenset({"join"}),
    "ThreadPoolExecutor": frozenset({"shutdown"}),
}

#: methods exempt from guard checking: the object is not shared yet
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


class _LineDirectives:
    """Parsed trailing-comment directives of one source line."""

    __slots__ = ("guarded_by", "requires", "unsynchronized", "ignore")

    def __init__(self, line):
        match = _GUARDED_BY.search(line)
        self.guarded_by = match.group(1) if match else None
        match = _REQUIRES.search(line)
        self.requires = match.group(1) if match else None
        match = _UNSYNC.search(line)
        self.unsynchronized = match.group(1) if match else None
        self.ignore = None
        match = _IGNORE.search(line)
        if match:
            codes = match.group(1)
            self.ignore = (
                frozenset(code.strip() for code in codes.split(","))
                if codes else frozenset(CODES)
            )


class ClassModel:
    """Everything the checker knows about one class definition."""

    def __init__(self, name, path, node):
        self.name = name
        self.path = path
        self.node = node
        self.locks = {}  # lock attr -> creation lineno
        self.lock_creations = []  # (attr, method name, lineno)
        self.guarded = {}  # field -> guard lock attr
        self.guard_lines = {}  # field -> annotation lineno
        self.unsynchronized = {}  # field -> reason
        self.attr_types = {}  # attr -> constructor class name
        self.methods = {}  # name -> FunctionDef
        self.properties = set()  # names defined with @property

    def qualified(self, lock_attr):
        return "%s.%s" % (self.name, lock_attr)


class ModuleModel:
    """One parsed file: AST, per-line directives and import aliases."""

    def __init__(self, path, source):
        self.path = path
        self.tree = ast.parse(source)
        lines = source.splitlines()
        self.directives = {
            number: _LineDirectives(line)
            for number, line in enumerate(lines, start=1)
            if "#" in line
        }
        self.aliases = _import_aliases(self.tree)
        self.classes = [
            node for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]
        self.functions = [
            node for node in self.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def directive(self, lineno):
        return self.directives.get(lineno)


def _import_aliases(tree):
    """Top-level import name → dotted path (``sleep`` → ``time.sleep``)."""
    aliases = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    "%s.%s" % (node.module, alias.name)
                )
    return aliases


def _dotted_name(node, aliases):
    """``a.b.c`` for a Name/Attribute chain, alias-expanded, or ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _constructor_class(call, aliases):
    """The class a ``Call`` constructs, or ``None``.

    ``CacheStats()`` → ``CacheStats``; ``queue.Queue()`` → ``Queue``;
    ``GraphStatistics.from_graph(...)`` → ``GraphStatistics`` (classmethod
    factories resolve to the receiving class).
    """
    func = call.func
    if isinstance(func, ast.Name):
        name = aliases.get(func.id, func.id).rsplit(".", 1)[-1]
        return name
    if isinstance(func, ast.Attribute):
        if func.attr[:1].isupper():
            return func.attr
        if isinstance(func.value, ast.Name) and func.value.id[:1].isupper():
            return func.value.id
    return None


def _is_lock_constructor(call, aliases):
    dotted = _dotted_name(call.func, aliases)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in LOCK_CONSTRUCTORS


class _Finding:
    """Internal pre-Diagnostic record, sortable by position."""

    __slots__ = ("code", "path", "lineno", "message")

    def __init__(self, code, path, lineno, message):
        self.code = code
        self.path = path
        self.lineno = lineno
        self.message = message


class RaceReport:
    """The result of one racecheck run."""

    def __init__(self, diagnostics, files, lock_graph, guarded_fields,
                 acknowledged, suppressed):
        self.diagnostics = diagnostics
        self.files = files
        #: static acquisition-order edges {(from, to): "path:line"}
        self.lock_graph = lock_graph
        self.guarded_fields = guarded_fields
        self.acknowledged = acknowledged
        self.suppressed = suppressed

    @property
    def errors(self):
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def warnings(self):
        return len(self.diagnostics) - self.errors

    def format_summary(self):
        return (
            "racecheck: %d file(s), %d guarded field(s), "
            "%d acknowledged unsynchronized, %d lock-order edge(s); "
            "%d error(s), %d warning(s), %d suppressed"
            % (len(self.files), self.guarded_fields, self.acknowledged,
               len(self.lock_graph), self.errors, self.warnings,
               self.suppressed)
        )

    def format_graph(self):
        lines = ["static lock-order graph (%d edge(s)):"
                 % len(self.lock_graph)]
        for (source, target) in sorted(self.lock_graph):
            lines.append("  %-28s -> %-28s %s"
                         % (source, target, self.lock_graph[(source, target)]))
        return "\n".join(lines)


class RaceChecker:
    """Multi-file lock-discipline analysis; feed files, then :meth:`check`."""

    def __init__(self):
        self._modules = []
        self._findings = []
        self._models = []  # (module, ClassModel) in scan order
        self._classes = {}  # class name -> ClassModel (None if ambiguous)
        self._edges = {}  # (from node, to node) -> "path:line"
        self._suppressed = 0
        self._direct_locks = {}  # (class name, method) -> set of nodes

    # Input -------------------------------------------------------------------

    def add_source(self, source, path="<source>"):
        """Parse one unit of Python source (raises ``SyntaxError``)."""
        self._modules.append(ModuleModel(path, source))

    def add_file(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            self.add_source(handle.read(), path)

    def add_path(self, path):
        """A file, or a directory walked recursively for ``*.py``."""
        if os.path.isdir(path):
            for directory, _subdirs, files in sorted(os.walk(path)):
                for name in sorted(files):
                    if name.endswith(".py"):
                        self.add_file(os.path.join(directory, name))
        else:
            self.add_file(path)

    # Analysis ----------------------------------------------------------------

    def check(self):
        """Run every pass; returns a :class:`RaceReport`."""
        self._collect_classes()
        self._collect_direct_locks()
        for module in self._modules:
            self._check_module(module)
        self._check_lock_order()
        findings = sorted(
            self._findings,
            key=lambda f: (f.path, f.lineno, f.code),
        )
        diagnostics = [
            Diagnostic.of(f.code, "%s:%d: %s" % (f.path, f.lineno, f.message))
            for f in findings
        ]
        diagnostics.sort(key=lambda d: d.severity)
        guarded = sum(
            len(model.guarded)
            for model in self._classes.values() if model is not None
        )
        acknowledged = sum(
            len(model.unsynchronized)
            for model in self._classes.values() if model is not None
        )
        return RaceReport(
            diagnostics,
            [module.path for module in self._modules],
            dict(self._edges),
            guarded,
            acknowledged,
            self._suppressed,
        )

    # Pass 1: class models ----------------------------------------------------

    def _collect_classes(self):
        for module in self._modules:
            for node in module.classes:
                model = ClassModel(node.name, module.path, node)
                self._scan_class(module, node, model)
                self._models.append((module, model))
                if node.name in self._classes:
                    # ambiguous name across files: disable resolution
                    self._classes[node.name] = None
                else:
                    self._classes[node.name] = model

    def _scan_class(self, module, node, model):
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                model.methods[item.name] = item
                if any(
                    isinstance(dec, ast.Name)
                    and dec.id in ("property", "cached_property")
                    for dec in item.decorator_list
                ):
                    model.properties.add(item.name)
                self._scan_method_fields(module, item, model)
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                # class-level fields may carry annotations too
                self._scan_field_directives(module, item, model,
                                            class_level=True)

    def _scan_method_fields(self, module, method, model):
        for stmt in ast.walk(method):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if isinstance(value, ast.Call):
                    if _is_lock_constructor(value, module.aliases):
                        model.locks.setdefault(attr, stmt.lineno)
                        model.lock_creations.append(
                            (attr, method.name, stmt.lineno)
                        )
                    else:
                        constructed = _constructor_class(
                            value, module.aliases
                        )
                        if constructed is not None:
                            model.attr_types.setdefault(attr, constructed)
                directives = module.directive(stmt.lineno)
                if directives is None:
                    continue
                if directives.guarded_by is not None:
                    model.guarded.setdefault(attr, directives.guarded_by)
                    model.guard_lines.setdefault(attr, stmt.lineno)
                if directives.unsynchronized is not None:
                    model.unsynchronized.setdefault(
                        attr, directives.unsynchronized
                    )

    def _scan_field_directives(self, module, stmt, model, class_level=False):
        directives = module.directive(stmt.lineno)
        if directives is None:
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if directives.guarded_by is not None:
                    model.guarded.setdefault(target.id, directives.guarded_by)
                    model.guard_lines.setdefault(target.id, stmt.lineno)
                if directives.unsynchronized is not None:
                    model.unsynchronized.setdefault(
                        target.id, directives.unsynchronized
                    )

    def _resolve_class(self, name):
        if name is None:
            return None
        return self._classes.get(name)

    # Pass 1b: direct lock acquisitions per method ----------------------------

    def _collect_direct_locks(self):
        for module, model in self._models:
            for name, method in model.methods.items():
                acquired = set()
                for node in ast.walk(method):
                    if not isinstance(node, (ast.With, ast.AsyncWith)):
                        continue
                    for item in node.items:
                        resolved = self._resolve_lock_expr(
                            item.context_expr, model, module
                        )
                        if resolved is not None:
                            acquired.add(resolved[1])
                if acquired:
                    self._direct_locks.setdefault(
                        (model.name, name), set()
                    ).update(acquired)

    def _resolve_lock_expr(self, expr, owner, module):
        """``(held_key, graph_node)`` for a with-item, or ``None``.

        Resolves ``self.X`` (own lock), ``self.Y.Z`` (lock of a
        constructor-typed attribute) and ``v.Z`` for locals typed in the
        calling function (handled by the walker, which passes local
        types through ``owner``-independent keys).
        """
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and owner is not None
            and expr.attr in owner.locks
        ):
            return ("self", expr.attr), owner.qualified(expr.attr)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Attribute)
            and isinstance(expr.value.value, ast.Name)
            and expr.value.value.id == "self"
            and owner is not None
        ):
            through = expr.value.attr
            target = self._resolve_class(owner.attr_types.get(through))
            if target is not None and expr.attr in target.locks:
                return (
                    ("attr", through, expr.attr),
                    target.qualified(expr.attr),
                )
        return None

    # Pass 2: per-function checks ---------------------------------------------

    def _check_module(self, module):
        for owner, model in self._models:
            if owner is module:
                self._check_class(module, model)
        for function in module.functions:
            walker = _FunctionWalker(self, module, None, function)
            walker.run()

    def _check_class(self, module, model):
        # C305: guard annotations naming unknown lock attributes
        for field, guard in sorted(model.guarded.items()):
            if guard not in model.locks:
                self._emit(
                    "C305", module, model.guard_lines.get(field, 1),
                    "field %s.%s declares guard %r but the class never "
                    "creates a lock attribute with that name"
                    % (model.name, field, guard),
                )
        for name, method in model.methods.items():
            walker = _FunctionWalker(self, module, model, method)
            walker.run()

    # Pass 3: global lock-order cycles ----------------------------------------

    def _record_edge(self, source, target, module, lineno):
        key = (source, target)
        if key not in self._edges:
            self._edges[key] = "%s:%d" % (module.path, lineno)

    def _check_lock_order(self):
        graph = {}
        for source, target in self._edges:
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
        for cycle in _find_cycles(graph):
            sites = [
                self._edges.get((a, b), "<derived>")
                for a, b in zip(cycle, cycle[1:])
            ]
            path, lineno = _site_position(sites)
            self._findings.append(_Finding(
                "C302", path, lineno,
                "lock-order inversion: %s (acquisition sites: %s)"
                % (" -> ".join(cycle), ", ".join(sites)),
            ))

    # Emission ----------------------------------------------------------------

    def _emit(self, code, module, lineno, message):
        directives = module.directive(lineno)
        if (
            directives is not None
            and directives.ignore is not None
            and code in directives.ignore
        ):
            self._suppressed += 1
            return
        self._findings.append(_Finding(code, module.path, lineno, message))


def _site_position(sites):
    """``(path, line)`` of the first concrete site in a C302 cycle."""
    for site in sites:
        if ":" in site:
            path, _colon, line = site.rpartition(":")
            if line.isdigit():
                return path, int(line)
    return "<global>", 0


class _FunctionWalker:
    """Walks one function body tracking lexically held locks."""

    def __init__(self, checker, module, owner, function):
        self.checker = checker
        self.module = module
        self.owner = owner
        self.function = function
        self.local_types = {}  # local var -> class name
        self.local_locks = {}  # local var -> creation lineno
        self.local_futures = set()  # locals assigned from .submit(...)
        self.exempt = (
            owner is not None and function.name in _CONSTRUCTION_METHODS
        )

    def run(self):
        held = {}
        directives = self.module.directive(self.function.lineno)
        if (
            directives is not None
            and directives.requires is not None
            and self.owner is not None
        ):
            node = None
            if directives.requires in self.owner.locks:
                node = self.owner.qualified(directives.requires)
            held[("self", directives.requires)] = node
        self._walk_block(self.function.body, held)

    # Statement dispatch ------------------------------------------------------

    def _walk_block(self, statements, held):
        for statement in statements:
            self._walk_statement(statement, held)

    def _walk_statement(self, statement, held):
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self._track_assignments(statement)
            inner = dict(held)
            for item in statement.items:
                self._check_expression(item.context_expr, held)
                self._enter_with_item(item, held, inner)
            self._walk_block(statement.body, inner)
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function may run on any thread at any time: check
            # its body with no locks assumed held
            nested = _FunctionWalker(
                self.checker, self.module, self.owner, statement
            )
            nested.local_types = dict(self.local_types)
            nested.run()
            return
        if isinstance(statement, ast.ClassDef):
            return
        self._track_assignments(statement)
        for expression in _statement_expressions(statement):
            self._check_expression(expression, held)
        for body in _statement_blocks(statement):
            self._walk_block(body, held)

    def _enter_with_item(self, item, held, inner):
        expr = item.context_expr
        # C304: `with threading.Lock():` — born and acquired together
        if isinstance(expr, ast.Call) and _is_lock_constructor(
            expr, self.module.aliases
        ):
            self.checker._emit(
                "C304", self.module, expr.lineno,
                "lock created and immediately acquired in %r — a per-call "
                "lock guards nothing" % self.function.name,
            )
            inner[("anon", expr.lineno)] = None
            return
        resolved = self.checker._resolve_lock_expr(
            expr, self.owner, self.module
        )
        if resolved is not None:
            key, node = resolved
            for held_node in held.values():
                if held_node is not None and node is not None:
                    self.checker._record_edge(
                        held_node, node, self.module, expr.lineno
                    )
            inner[key] = node
            return
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.local_locks:
                self.checker._emit(
                    "C304", self.module, self.local_locks[name],
                    "lock %r created in %r and acquired in the same call — "
                    "a per-call lock guards nothing"
                    % (name, self.function.name),
                )
            inner[("local", name)] = None
            return
        # locks of locally typed objects: `with v._lock:`
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
        ):
            target = self.checker._resolve_class(
                self.local_types.get(expr.value.id)
            )
            if target is not None and expr.attr in target.locks:
                inner[("localattr", expr.value.id, expr.attr)] = (
                    target.qualified(expr.attr)
                )
                for held_node in held.values():
                    if held_node is not None:
                        self.checker._record_edge(
                            held_node, target.qualified(expr.attr),
                            self.module, expr.lineno,
                        )
                return
        inner[("anon", expr.lineno)] = None

    def _track_assignments(self, statement):
        """Local name → constructed class / lock / future bookkeeping."""
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if (
                    item.optional_vars is not None
                    and isinstance(item.optional_vars, ast.Name)
                    and isinstance(item.context_expr, ast.Call)
                ):
                    constructed = _constructor_class(
                        item.context_expr, self.module.aliases
                    )
                    if constructed is not None:
                        self.local_types.setdefault(
                            item.optional_vars.id, constructed
                        )
            return
        if not isinstance(statement, ast.Assign):
            return
        if len(statement.targets) != 1:
            return
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = statement.value
        if not isinstance(value, ast.Call):
            return
        if _is_lock_constructor(value, self.module.aliases):
            self.local_locks.setdefault(target.id, statement.lineno)
            return
        if (
            isinstance(value.func, ast.Attribute)
            and value.func.attr == "submit"
        ):
            self.local_futures.add(target.id)
            return
        constructed = _constructor_class(value, self.module.aliases)
        if constructed is not None:
            self.local_types.setdefault(target.id, constructed)

    # Expression checks -------------------------------------------------------

    def _check_expression(self, expression, held):
        if expression is None:
            return
        for node in ast.walk(expression):
            if isinstance(node, ast.Attribute):
                self._check_attribute(node, held)
            elif isinstance(node, ast.Call):
                self._check_call(node, held)

    def _held_nodes(self, held):
        return [node for node in held.values() if node is not None]

    def _holding_anything(self, held):
        return bool(held)

    def _check_attribute(self, node, held):
        field = node.attr
        receiver = node.value
        # self.field
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and self.owner is not None
        ):
            if field in self.owner.guarded and not self.exempt:
                guard = self.owner.guarded[field]
                if ("self", guard) not in held:
                    self._emit_c301(
                        node, "%s.%s" % (self.owner.name, field), guard,
                        self.owner.name,
                    )
            elif field in self.owner.properties:
                self._expand_callee(self.owner.name, field, held, node.lineno)
            return
        # self.Y.field
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and self.owner is not None
        ):
            through = receiver.attr
            target = self.checker._resolve_class(
                self.owner.attr_types.get(through)
            )
            if target is None:
                return
            if field in target.guarded and not self.exempt:
                guard = target.guarded[field]
                if ("attr", through, guard) not in held:
                    self._emit_c301(
                        node, "%s.%s" % (target.name, field), guard,
                        target.name,
                    )
            elif field in target.properties:
                self._expand_callee(target.name, field, held, node.lineno)
            return
        # v.field for a constructor-typed local
        if isinstance(receiver, ast.Name):
            target = self.checker._resolve_class(
                self.local_types.get(receiver.id)
            )
            if target is None:
                return
            if field in target.guarded:
                guard = target.guarded[field]
                if ("localattr", receiver.id, guard) not in held:
                    self._emit_c301(
                        node, "%s.%s" % (target.name, field), guard,
                        target.name,
                    )
            elif field in target.properties:
                self._expand_callee(target.name, field, held, node.lineno)

    def _emit_c301(self, node, qualified_field, guard, class_name):
        access = (
            "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        )
        self.checker._emit(
            "C301", self.module, node.lineno,
            "%s of %s outside its guard %s.%s (declared '# guarded-by: %s')"
            % (access, qualified_field, class_name, guard, guard),
        )

    def _check_call(self, node, held):
        func = node.func
        # one-hop lock-order expansion through method calls
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and self.owner is not None:
                self._expand_callee(
                    self.owner.name, func.attr, held, node.lineno
                )
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and self.owner is not None
            ):
                target = self.owner.attr_types.get(receiver.attr)
                if target is not None:
                    self._expand_callee(target, func.attr, held, node.lineno)
            elif isinstance(receiver, ast.Name):
                target = self.local_types.get(receiver.id)
                if target is not None:
                    self._expand_callee(target, func.attr, held, node.lineno)
        if not self._holding_anything(held):
            return
        # C306 first: pipe IPC is the more specific finding, and .recv()
        # would otherwise double-report through C303's always-blocking set
        ipc = self._ipc_reason(node)
        if ipc is not None:
            names = ", ".join(sorted(
                node for node in self._held_nodes(held)
            )) or "a lock"
            self.checker._emit(
                "C306", self.module, node.lineno,
                "%s while holding %s" % (ipc, names),
            )
            return
        blocked = self._blocking_reason(node)
        if blocked is not None:
            names = ", ".join(sorted(
                node for node in self._held_nodes(held)
            )) or "a lock"
            self.checker._emit(
                "C303", self.module, node.lineno,
                "%s while holding %s" % (blocked, names),
            )

    def _expand_callee(self, class_name, method, held, lineno):
        held_nodes = self._held_nodes(held)
        if not held_nodes:
            return
        acquired = self.checker._direct_locks.get((class_name, method))
        if not acquired:
            return
        for source in held_nodes:
            for target in acquired:
                if source != target:
                    self.checker._record_edge(
                        source, target, self.module, lineno
                    )

    def _ipc_reason(self, call):
        """C306: pipe IPC on a Connection-named receiver.

        Purely lexical — a receiver whose terminal name mentions
        ``conn`` or ``pipe`` calling a Connection method.  Sockets and
        queues keep flowing into C303's machinery.
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in IPC_METHODS:
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        else:
            return None
        lowered = name.lower()
        if "conn" not in lowered and "pipe" not in lowered:
            return None
        return "blocking pipe IPC %s.%s()" % (name, func.attr)

    def _blocking_reason(self, call):
        dotted = _dotted_name(call.func, self.module.aliases)
        if dotted is not None and dotted in BLOCKING_CALLS:
            return "blocking call %s()" % dotted
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        if method in ALWAYS_BLOCKING_METHODS:
            return "blocking call .%s()" % method
        receiver = func.value
        # future.result() on a just-submitted task
        if method == "result":
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Attribute)
                and receiver.func.attr == "submit"
            ):
                return "Future.result() on a just-submitted task"
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in self.local_futures
            ):
                return "Future.result() on a just-submitted task"
        receiver_type = None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and self.owner is not None
        ):
            receiver_type = self.owner.attr_types.get(receiver.attr)
        elif isinstance(receiver, ast.Name):
            receiver_type = self.local_types.get(receiver.id)
        if receiver_type is not None:
            blocking = BLOCKING_METHODS_BY_TYPE.get(receiver_type)
            if blocking and method in blocking:
                return "blocking call %s.%s()" % (receiver_type, method)
        return None


def _statement_expressions(statement):
    """Direct expression children of a statement (bodies excluded)."""
    for _field, value in ast.iter_fields(statement):
        values = value if isinstance(value, list) else [value]
        for child in values:
            if isinstance(child, ast.expr):
                yield child
            elif isinstance(child, ast.ExceptHandler) and child.type:
                yield child.type


def _statement_blocks(statement):
    """Nested statement lists of a compound statement."""
    for field in ("body", "orelse", "finalbody"):
        block = getattr(statement, field, None)
        if block:
            yield block
    for handler in getattr(statement, "handlers", ()) or ():
        yield handler.body


def _find_cycles(graph):
    """One representative cycle per SCC of size > 1, plus self-loops."""
    cycles = [[name, name] for name in graph if name in graph.get(name, ())]
    for component in _strongly_connected(graph):
        if len(component) > 1:
            cycles.append(_component_cycle(graph, component))
    return cycles


def _strongly_connected(graph):
    from repro.locks import _strongly_connected as impl

    return impl(graph)


def _component_cycle(graph, component):
    from repro.locks import _component_cycle as impl

    return impl(graph, component)


def racecheck_source(source, path="<source>"):
    """Check one source string; returns a :class:`RaceReport`."""
    checker = RaceChecker()
    checker.add_source(source, path)
    return checker.check()


def racecheck_paths(paths):
    """Check files/directories; returns a :class:`RaceReport`."""
    checker = RaceChecker()
    for path in paths:
        checker.add_path(path)
    return checker.check()

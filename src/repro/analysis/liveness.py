"""Backward liveness analysis over physical plans (``S4xx``).

The forward flow verifier (:mod:`repro.analysis.flow`) proves what a plan
*carries* — this module proves what a plan *consumes*.  Starting from the
final projection's demand (the RETURN/ORDER BY items), a backward
abstract interpretation propagates per-column, per-property-record and
per-path-content liveness *down* the operator tree through the dual of
each forward transfer rule: a join demands its key columns (and whatever
its compiled morphism check inspects) of both inputs, a selection demands
the columns and property records its CNF reads, an expansion demands its
start column — plus, under isomorphism, every base id column and the
contents of every base path — and a projection demands only the records
it keeps *that something above it still reads*.

Everything an operator introduces but nothing downstream ever reads is
dead freight, flagged as a warning (dead bytes are legal — every
embedding still decodes — just wasteful):

=====  ==========================================================
code   finding
=====  ==========================================================
S401   an id column no consumer reads (future columnar-drop fodder)
S402   a property record loaded into embeddings but never read
S403   path contents carried but never read (only the slot is used)
S404   operator without a liveness transfer rule (assumed all-live)
=====  ==========================================================

Two consumers build on the demand sets this pass computes: the plan
rewriter (:mod:`repro.engine.planning.prune`) narrows leaf property
extraction and inserts early projections exactly down to the live set,
and the cost-bound analyzer (:mod:`repro.analysis.costbound`) prices the
bytes each operator moves.
"""

from typing import Dict, List, Optional

from .diagnostics import Diagnostic, sort_diagnostics
from .flow import operator_span


class LivenessVerificationError(AssertionError):
    """A plan failed the liveness check (dead bytes or unknown operators)."""

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        lines = ["plan failed liveness verification with %d finding(s):"
                 % len(self.diagnostics)]
        lines += ["  " + d.format() for d in self.diagnostics]
        super().__init__("\n".join(lines))


class Demand:
    """The abstract value: what downstream consumers read of an output.

    ``variables`` holds variables whose *id column bytes* are read (join
    keys, morphism checks, expansion starts, returned bindings);
    ``properties`` holds ``(variable, key)`` pairs whose ``prop_data``
    record is read; ``paths`` holds path variables whose *contents* (the
    hop sequence, not just the column slot) are read.
    """

    __slots__ = ("variables", "properties", "paths")

    def __init__(self, variables=(), properties=(), paths=()):
        self.variables = set(variables)
        self.properties = set(properties)
        self.paths = set(paths)

    def copy(self):
        return Demand(self.variables, self.properties, self.paths)

    def restricted_to(self, meta):
        """The demand intersected with what ``meta`` actually provides."""
        if meta is None:
            return self.copy()
        provided = set(meta.variables)
        pairs = set(meta.property_entries())
        return Demand(
            self.variables & provided,
            self.properties & pairs,
            self.paths & provided,
        )

    def __repr__(self):
        return "Demand(vars=%r, props=%r, paths=%r)" % (
            sorted(self.variables),
            sorted(self.properties),
            sorted(self.paths),
        )


def _all_live(meta):
    """The conservative top: every byte ``meta`` describes is demanded."""
    if meta is None:
        return Demand()
    return Demand(
        variables=set(meta.variables),
        properties=set(meta.property_entries()),
        paths={v for v in meta.variables if meta.entry_kind(v) == "p"},
    )


class LivenessReport:
    """Outcome of one :func:`verify_liveness` pass over a plan."""

    def __init__(self, root, diagnostics, demands):
        self.root = root
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        #: ``id(operator)`` → :class:`Demand` at that operator's *output*
        self._demands = dict(demands)

    def demand_of(self, operator) -> Optional[Demand]:
        return self._demands.get(id(operator))

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def clean(self):
        """True when every carried byte is provably consumed."""
        return not self.diagnostics

    def format_summary(self):
        dead = {"S401": 0, "S402": 0, "S403": 0}
        for diagnostic in self.diagnostics:
            if diagnostic.code in dead:
                dead[diagnostic.code] += 1
        return (
            "liveness: %d operator(s) interpreted, %d dead column(s), "
            "%d dead property record(s), %d dead path(s) — %s"
            % (
                len(self._demands),
                dead["S401"],
                dead["S402"],
                dead["S403"],
                "all bytes live" if self.clean else "dead bytes found",
            )
        )


def verify_liveness(root, handler=None, vertex_strategy=None,
                    edge_strategy=None):
    """Backward liveness pass over the plan under ``root``.

    ``handler`` (the compiled :class:`~repro.cypher.QueryHandler`)
    supplies the root demand from its RETURN/ORDER BY items; without one
    — or with ``RETURN *`` — every root byte is conservatively live.
    The strategies pin which columns the compiled morphism checks read,
    exactly mirroring :func:`~repro.engine.morphism.compile_morphism_check`.
    """
    return _LivenessAnalyzer(vertex_strategy, edge_strategy).analyze(
        root, handler
    )


def assert_liveness(root, handler=None, vertex_strategy=None,
                    edge_strategy=None):
    """Like :func:`verify_liveness` but raises unless the plan is clean."""
    report = verify_liveness(
        root, handler,
        vertex_strategy=vertex_strategy, edge_strategy=edge_strategy,
    )
    if not report.clean:
        raise LivenessVerificationError(report.diagnostics)
    return report


class _LivenessAnalyzer:
    """One backward pass: demand transfer rules + dead-byte findings."""

    def __init__(self, vertex_strategy, edge_strategy):
        from repro.engine.morphism import (
            DEFAULT_EDGE_STRATEGY,
            DEFAULT_VERTEX_STRATEGY,
            MatchStrategy,
        )

        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self._vertex_iso = self.vertex_strategy is MatchStrategy.ISOMORPHISM
        self._edge_iso = self.edge_strategy is MatchStrategy.ISOMORPHISM
        self._diagnostics = []
        self._demands: Dict[int, Demand] = {}

    def analyze(self, root, handler):
        self._visit(root, self._root_demand(root, handler))
        return LivenessReport(
            root, sort_diagnostics(self._diagnostics), self._demands
        )

    # Reporting ----------------------------------------------------------------

    def _flag(self, code, operator, detail):
        self._diagnostics.append(
            Diagnostic.of(
                code,
                "%s: %s" % (operator.describe(), detail),
                span=operator_span(operator),
            )
        )

    # Root demand --------------------------------------------------------------

    def _root_demand(self, root, handler):
        """What the final result construction reads of the root embedding.

        An explicit RETURN reads exactly its items (and the ORDER BY
        keys): a property access reads one ``prop_data`` record, a
        variable reference reads its id column (a path variable's whole
        hop sequence).  ``RETURN *`` — or no handler at all — reads
        everything, as does result collection with attached bindings.
        """
        from repro.cypher.ast import FunctionCall, PropertyAccess, VariableRef

        meta = root.meta
        returns = getattr(getattr(handler, "ast", None), "returns", None)
        if meta is None or returns is None or returns.star:
            return _all_live(meta)
        path_vars = {
            v for v in meta.variables if meta.entry_kind(v) == "p"
        }
        demand = Demand()
        expressions = [item.expression for item in returns.items]
        expressions += [order.expression for order in returns.order_by]
        for expression in expressions:
            if isinstance(expression, FunctionCall):
                expression = expression.argument
                if expression is None:  # count(*)
                    continue
            if isinstance(expression, PropertyAccess):
                demand.properties.add((expression.variable, expression.key))
            elif isinstance(expression, VariableRef):
                demand.variables.add(expression.name)
                if expression.name in path_vars:
                    demand.paths.add(expression.name)
        return demand.restricted_to(meta)

    # Traversal ----------------------------------------------------------------

    def _visit(self, operator, demand):
        demand = demand.restricted_to(operator.meta)
        self._demands[id(operator)] = demand
        child_demands = self._transfer(operator, demand)
        for child, child_demand in zip(operator.children, child_demands):
            self._visit(child, child_demand)

    def _transfer(self, op, demand):
        """The backward transfer: demands on each child, plus findings."""
        from repro.engine.operators.expand import ExpandEmbeddings
        from repro.engine.operators.filter_project import (
            ProjectEmbeddings,
            SelectEmbeddings,
        )
        from repro.engine.operators.join import (
            CartesianEmbeddings,
            JoinEmbeddings,
        )
        from repro.engine.operators.leaves import (
            SelectAndProjectEdges,
            SelectAndProjectVertices,
        )
        from repro.engine.operators.value_join import JoinEmbeddingsOnProperty

        if isinstance(op, SelectAndProjectVertices):
            return self._leaf_vertex(op, demand)
        if isinstance(op, SelectAndProjectEdges):
            return self._leaf_edge(op, demand)
        if isinstance(op, JoinEmbeddings):
            return self._join(op, demand, op.join_variables)
        if isinstance(op, CartesianEmbeddings):
            return self._join(op, demand, [])
        if isinstance(op, JoinEmbeddingsOnProperty):
            return self._value_join(op, demand)
        if isinstance(op, ExpandEmbeddings):
            return self._expand(op, demand)
        if isinstance(op, SelectEmbeddings):
            return self._select(op, demand)
        if isinstance(op, ProjectEmbeddings):
            return self._project(op, demand)
        return self._unknown(op)

    # Backward transfer rules --------------------------------------------------

    def _leaf_vertex(self, op, demand):
        variable = op.query_vertex.variable
        if variable not in demand.variables:
            self._flag(
                "S401", op,
                "id column %r is never read downstream" % variable,
            )
        self._report_dead_properties(op, demand)
        return []

    def _leaf_edge(self, op, demand):
        edge = op.query_edge
        columns = [edge.source, edge.variable]
        if not op.is_loop:
            columns.append(edge.target)
        for variable in columns:
            if variable not in demand.variables:
                self._flag(
                    "S401", op,
                    "id column %r is never read downstream" % variable,
                )
        self._report_dead_properties(op, demand)
        return []

    def _report_dead_properties(self, op, demand):
        """S402 at the introduction site: a loaded record nobody reads.

        Element-local predicates evaluate on the *element* inside the
        leaf's flat-map, before projection — so a key loaded only for
        them is dead weight in every embedding above the leaf.
        """
        meta = op.meta
        if meta is None:
            return
        for variable, key in meta.property_entries():
            if (variable, key) not in demand.properties:
                self._flag(
                    "S402", op,
                    "property record %s.%s is loaded into embeddings but "
                    "never read downstream" % (variable, key),
                )

    def _join(self, op, demand, join_variables):
        left_meta = op.children[0].meta
        right_meta = op.children[1].meta
        left = demand.restricted_to(left_meta)
        right = demand.restricted_to(right_meta)
        # the join itself reads the key columns of both inputs
        for variable in join_variables:
            left.variables.add(variable)
            right.variables.add(variable)
        self._add_morphism_demand(op.meta, left, right)
        return [left.restricted_to(left_meta),
                right.restricted_to(right_meta)]

    def _value_join(self, op, demand):
        left_meta = op.children[0].meta
        right_meta = op.children[1].meta
        left = demand.restricted_to(left_meta)
        right = demand.restricted_to(right_meta)
        left.properties.add(tuple(op.left_property))
        right.properties.add(tuple(op.right_property))
        self._add_morphism_demand(op.meta, left, right)
        return [left.restricted_to(left_meta),
                right.restricted_to(right_meta)]

    def _add_morphism_demand(self, meta, *sides):
        """What the merge's compiled morphism check reads of its output.

        Mirrors :func:`~repro.engine.morphism.compile_morphism_check`
        exactly, including its vacuous-truth conditions: no isomorphism
        strategy → nothing; a path-bearing shape falls back to the full
        check (every watched id column plus every path's contents);
        otherwise a kind is only inspected when it has two or more
        columns to compare.
        """
        if meta is None or not (self._vertex_iso or self._edge_iso):
            return
        vertex_vars, edge_vars, path_vars = [], [], []
        for variable in meta.variables:
            kind = meta.entry_kind(variable)
            if kind == "v" and self._vertex_iso:
                vertex_vars.append(variable)
            elif kind == "e" and self._edge_iso:
                edge_vars.append(variable)
            elif kind == "p":
                path_vars.append(variable)
        if path_vars:
            watched = set(vertex_vars) | set(edge_vars)
            watched_paths = set(path_vars)
        else:
            watched = set()
            if len(vertex_vars) > 1:
                watched |= set(vertex_vars)
            if len(edge_vars) > 1:
                watched |= set(edge_vars)
            watched_paths = set()
        for side in sides:
            side.variables |= watched
            side.paths |= watched_paths

    def _expand(self, op, demand):
        edge = op.query_edge
        child_meta = op.children[0].meta
        if edge.variable not in demand.paths:
            self._flag(
                "S403", op,
                "path contents of %r are carried but never read — only "
                "the column slot is required downstream" % edge.variable,
            )
        if not op.closing and op.end_variable not in demand.variables:
            self._flag(
                "S401", op,
                "id column %r is never read downstream" % op.end_variable,
            )
        child = demand.restricted_to(child_meta)
        child.variables.add(op.start_variable)
        if op.closing:
            child.variables.add(op.end_variable)
        if self._vertex_iso or self._edge_iso:
            # the superstep seeds its seen-sets from every base vertex and
            # edge id column and the contents of every base path column
            if child_meta is not None:
                for variable in child_meta.variables:
                    kind = child_meta.entry_kind(variable)
                    if kind in ("v", "e"):
                        child.variables.add(variable)
                    else:
                        child.paths.add(variable)
        return [child.restricted_to(child_meta)]

    def _select(self, op, demand):
        child = demand.copy()
        child.variables |= op.cnf.variables()
        for variable, keys in op.cnf.property_keys().items():
            for key in keys:
                child.properties.add((variable, key))
        return [child.restricted_to(op.children[0].meta)]

    def _project(self, op, demand):
        # the projection copies its kept records; copying is not reading,
        # so only records something *above* still reads stay demanded —
        # this is what lets pruning narrow transitively down to the leaf
        child = demand.restricted_to(op.children[0].meta)
        child.properties = {
            tuple(pair) for pair in op.keep_pairs
            if tuple(pair) in demand.properties
        }
        return [child.restricted_to(op.children[0].meta)]

    def _unknown(self, op):
        self._flag(
            "S404", op,
            "no liveness transfer rule for %s — everything below is "
            "conservatively assumed live" % type(op).__name__,
        )
        return [_all_live(child.meta) for child in op.children]

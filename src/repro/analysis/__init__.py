"""Static and dynamic query analysis.

Four layers over the Cypher pipeline:

* :func:`lint_query` / :class:`QueryLinter` — static diagnostics on the
  parsed query (before planning): semantic errors, provably-empty
  predicates, statistics-informed warnings, plan-shape warnings.
* :func:`verify_plan` / :class:`PlanVerifier` — structural invariants of
  a compiled physical operator tree, planner-independent.
* :class:`EmbeddingSanitizer` / :func:`validate_embedding` — opt-in
  instrumented execution validating every embedding crossing an operator
  boundary against the §3.3 byte layout and the morphism semantics.
* :func:`differential_check` and :func:`audit_estimates` — dynamic
  cross-planner result comparison and per-operator cardinality q-error.
* :mod:`repro.analysis.concurrency` — the concurrency correctness
  toolkit for *our own* serving code: the static lock-discipline linter
  (C3xx, ``repro racecheck``), the runtime lock-order witness and the
  deterministic interleaving fuzzer.  Imported lazily by tooling — not
  re-exported here, so importing :mod:`repro.analysis` stays cheap.

The invariants tying them together (property-tested): a query that lints
without errors plans into a tree that verifies cleanly under every
planner, and its sanitized execution raises no finding while all three
planners return the same result multiset.
"""

from .diagnostics import (
    BLOCKING_CODES,
    CODES,
    Diagnostic,
    QueryLintError,
    Severity,
    sort_diagnostics,
)
from .linter import QueryLinter, lint_query
from .verifier import (
    PlanVerificationError,
    PlanVerifier,
    Violation,
    verify_plan,
)
# The sanitizer imports the engine package; it must come after the
# verifier import above, which completes the engine's initialization.
from .sanitizer import (
    EmbeddingSanitizer,
    SanitizerError,
    validate_embedding,
)
from .differential import (
    DifferentialReport,
    PlannerRun,
    compare_runs,
    differential_check,
    fusion_differential_check,
)
from .estimates import (
    DEFAULT_MAX_Q_ERROR,
    EstimateAudit,
    EstimateRecord,
    audit_estimates,
    q_error,
)


__all__ = [
    "BLOCKING_CODES",
    "CODES",
    "DEFAULT_MAX_Q_ERROR",
    "Diagnostic",
    "DifferentialReport",
    "EmbeddingSanitizer",
    "EstimateAudit",
    "EstimateRecord",
    "PlanVerificationError",
    "PlanVerifier",
    "PlannerRun",
    "QueryLintError",
    "QueryLinter",
    "SanitizerError",
    "Severity",
    "Violation",
    "audit_estimates",
    "compare_runs",
    "differential_check",
    "fusion_differential_check",
    "lint_query",
    "q_error",
    "sort_diagnostics",
    "validate_embedding",
    "verify_plan",
]

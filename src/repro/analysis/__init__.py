"""Static query analysis: linting and physical-plan verification.

Two independent layers over the Cypher pipeline:

* :func:`lint_query` / :class:`QueryLinter` — static diagnostics on the
  parsed query (before planning): semantic errors, provably-empty
  predicates, statistics-informed warnings, plan-shape warnings.
* :func:`verify_plan` / :class:`PlanVerifier` — structural invariants of
  a compiled physical operator tree, planner-independent.

The invariant tying them together (property-tested): a query that lints
without errors plans into a tree that verifies cleanly under every
planner.
"""

from .diagnostics import (
    BLOCKING_CODES,
    CODES,
    Diagnostic,
    QueryLintError,
    Severity,
    sort_diagnostics,
)
from .linter import QueryLinter, lint_query
from .verifier import (
    PlanVerificationError,
    PlanVerifier,
    Violation,
    verify_plan,
)


__all__ = [
    "BLOCKING_CODES",
    "CODES",
    "Diagnostic",
    "PlanVerificationError",
    "PlanVerifier",
    "QueryLintError",
    "QueryLinter",
    "Severity",
    "Violation",
    "lint_query",
    "sort_diagnostics",
    "verify_plan",
]

"""Static and dynamic query analysis.

Four layers over the Cypher pipeline:

* :func:`lint_query` / :class:`QueryLinter` — static diagnostics on the
  parsed query (before planning): semantic errors, provably-empty
  predicates, statistics-informed warnings, plan-shape warnings.
* :func:`verify_plan` / :class:`PlanVerifier` — structural invariants of
  a compiled physical operator tree, planner-independent.
* :class:`EmbeddingSanitizer` / :func:`validate_embedding` — opt-in
  instrumented execution validating every embedding crossing an operator
  boundary against the §3.3 byte layout and the morphism semantics.
* :func:`differential_check` and :func:`audit_estimates` — dynamic
  cross-planner result comparison and per-operator cardinality q-error.
* :func:`verify_flow` / :class:`FlowReport` — the *static* layout-flow
  verifier (S3xx, ``repro flowcheck``): abstract interpretation over a
  physical plan proving at compile time the §3.3 byte-layout contracts
  the sanitizer checks per-embedding at runtime.
* :func:`classify_callable` / :func:`certify_chain` — the UDF
  shippability analyzer (P4xx): closure introspection + AST analysis
  deciding whether the callables in dataflow operators and fused chains
  can be shipped to worker processes.
* :func:`verify_liveness` / :func:`certify_plan` — the backward duals
  (S4xx, ``repro livecheck``): liveness propagates the RETURN clause's
  demand down the plan to find dead columns, dead property bytes and
  never-read path hops (driving the pruning rewriter in
  :mod:`repro.engine.planning.prune`), and the cost-bound analyzer
  composes per-operator worst-case cardinality/byte bounds into the
  :class:`CostCertificate` the serving layer's admission control
  consults.
* :mod:`repro.analysis.concurrency` — the concurrency correctness
  toolkit for *our own* serving code: the static lock-discipline linter
  (C3xx, ``repro racecheck``), the runtime lock-order witness and the
  deterministic interleaving fuzzer.  Imported lazily by tooling — not
  re-exported here, so importing :mod:`repro.analysis` stays cheap.
* :mod:`repro.analysis.protocol` / :mod:`repro.analysis.model` /
  :mod:`repro.analysis.wire_models` — the wire-protocol verifier for
  the multi-process worker runtime (W5xx, ``repro wirecheck``):
  AST-level schema extraction diffed against the declared pipe
  vocabulary, plus an explicit-state model checker exhaustively
  exploring the cancel/done, spec-cache, ring and resident-eviction
  protocols.  Lazily imported by tooling, like the concurrency kit.

The invariants tying them together (property-tested): a query that lints
without errors plans into a tree that verifies cleanly under every
planner, and its sanitized execution raises no finding while all three
planners return the same result multiset.
"""

from .diagnostics import (
    BLOCKING_CODES,
    CODES,
    Diagnostic,
    QueryLintError,
    Severity,
    sort_diagnostics,
)
from .linter import QueryLinter, lint_query
from .verifier import (
    PlanVerificationError,
    PlanVerifier,
    Violation,
    verify_plan,
)
# The sanitizer imports the engine package; it must come after the
# verifier import above, which completes the engine's initialization.
from .sanitizer import (
    DEFAULT_SAMPLE_EVERY,
    EmbeddingSanitizer,
    SanitizerError,
    validate_embedding,
)
# flow only imports the engine inside its functions, but keeping it after
# the sanitizer preserves the same initialization story for readers.
from .flow import (
    EmbeddingLayout,
    FlowReport,
    FlowVerificationError,
    assert_flow,
    operator_span,
    verify_flow,
)
from .liveness import (
    Demand,
    LivenessReport,
    LivenessVerificationError,
    assert_liveness,
    verify_liveness,
)
from .costbound import (
    PROPERTY_RECORD_BOUND,
    CostCertificate,
    OperatorBound,
    certify_plan,
)
from .udfcheck import (
    ShippabilityError,
    ShippabilityReport,
    analyze_callables,
    analyze_chain,
    analyze_dataflow,
    certify_chain,
    classify_callable,
    iter_dataflow_udfs,
)
from .differential import (
    DifferentialReport,
    PlannerRun,
    compare_runs,
    differential_check,
    fusion_differential_check,
)
from .estimates import (
    DEFAULT_MAX_Q_ERROR,
    EstimateAudit,
    EstimateRecord,
    audit_bound_soundness,
    audit_estimates,
    q_error,
)


__all__ = [
    "BLOCKING_CODES",
    "CODES",
    "CostCertificate",
    "DEFAULT_MAX_Q_ERROR",
    "DEFAULT_SAMPLE_EVERY",
    "Demand",
    "Diagnostic",
    "DifferentialReport",
    "EmbeddingLayout",
    "EmbeddingSanitizer",
    "EstimateAudit",
    "EstimateRecord",
    "FlowReport",
    "FlowVerificationError",
    "LivenessReport",
    "LivenessVerificationError",
    "OperatorBound",
    "PROPERTY_RECORD_BOUND",
    "PlanVerificationError",
    "PlanVerifier",
    "PlannerRun",
    "QueryLintError",
    "QueryLinter",
    "SanitizerError",
    "Severity",
    "ShippabilityError",
    "ShippabilityReport",
    "Violation",
    "analyze_callables",
    "analyze_chain",
    "analyze_dataflow",
    "assert_flow",
    "assert_liveness",
    "audit_bound_soundness",
    "audit_estimates",
    "certify_chain",
    "certify_plan",
    "classify_callable",
    "compare_runs",
    "differential_check",
    "fusion_differential_check",
    "iter_dataflow_udfs",
    "lint_query",
    "operator_span",
    "q_error",
    "sort_diagnostics",
    "validate_embedding",
    "verify_flow",
    "verify_liveness",
    "verify_plan",
]

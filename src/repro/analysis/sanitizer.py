"""Instrumented (sanitized) execution — ASan/UBSan for embeddings.

The paper's §3.3 embedding is three raw byte arrays interpreted through
an :class:`~repro.engine.embedding.EmbeddingMetaData` kept entirely
outside the bytes.  Nothing at runtime re-checks that the two stay
consistent while embeddings flow through joins, expansions and
projections — a single off-by-one in offset arithmetic silently corrupts
results.  :class:`EmbeddingSanitizer` is the opt-in instrumented mode
closing that gap: attached to a compiled plan, it wraps every
:class:`~repro.engine.operators.PhysicalOperator` boundary and validates
each emitted embedding structurally against the operator's metadata.

Checks per embedding (each with a stable ``S2xx`` diagnostic code):

* ``S201`` — ``id_data`` length is a multiple of ``ENTRY_WIDTH``;
* ``S202`` — the entry count matches the metadata's column count;
* ``S203`` — flag bytes are only ``FLAG_ID``/``FLAG_PATH`` and agree
  with the metadata's entry kind (``v``/``e`` vs ``p``);
* ``S204`` — every PATH offset lands on a complete ``path_data`` record
  whose element list has the odd (or zero) ``via`` length;
* ``S205`` — path element counts fit the query edge's declared
  ``*lower..upper`` hop bounds;
* ``S206``/``S207`` — ``prop_data`` length fields walk exactly to the
  buffer end, every payload deserializes to a valid ``PropertyValue``
  consuming exactly its declared bytes, and the record count matches
  the metadata;
* ``S208`` — the configured vertex/edge morphism strategy actually holds
  in the output (checked only on structurally sound embeddings);
* ``S209`` — operator contracts: join key columns agree byte-for-byte,
  property projections keep values bit-identical.

The sanitizer costs nothing when disabled: operators test ``_sanitizer``
once per dataset *build*, so the plain execution path has no
per-embedding branch.
"""

from typing import Optional

from repro.engine.embedding import (
    ENTRY_WIDTH,
    FLAG_ID,
    FLAG_PATH,
    PATH_COUNT_WIDTH,
    PATH_ID_WIDTH,
    iter_property_records,
)
from repro.engine.morphism import (
    DEFAULT_EDGE_STRATEGY,
    DEFAULT_VERTEX_STRATEGY,
    morphism_violations,
)
from repro.epgm import PropertyValue

from .diagnostics import Diagnostic

_FLAG_NAMES = {FLAG_ID: "ID", FLAG_PATH: "PATH"}

#: default sampling stride of ``CypherRunner(sanitize="sample")`` — every
#: 16th event keeps a meaningful tripwire while recovering most of the
#: full sanitizer's overhead
DEFAULT_SAMPLE_EVERY = 16


class SanitizerError(AssertionError):
    """Sanitized execution caught a corrupt embedding (``mode='raise'``).

    ``diagnostics`` carries the structured findings; the message renders
    them, prefixed by the operator whose boundary they crossed.
    """

    #: tells the dataflow layer not to rewrap this in JobExecutionError —
    #: the finding already names the plan operator it belongs to
    propagate_unwrapped = True

    def __init__(self, diagnostics, operator=None):
        self.diagnostics = list(diagnostics)
        self.operator = operator
        where = " at %s" % operator if operator else ""
        lines = [
            "sanitizer caught %d violation(s)%s:"
            % (len(self.diagnostics), where)
        ]
        lines += ["  " + diagnostic.format() for diagnostic in self.diagnostics]
        super().__init__("\n".join(lines))


def _check_path_record(path_data, offset):
    """Why ``offset`` is not a valid path record, or None when it is."""
    if offset < 0 or offset + PATH_COUNT_WIDTH > len(path_data):
        return (
            "offset %d has no complete element count (path_data is %d bytes)"
            % (offset, len(path_data))
        )
    count = int.from_bytes(
        path_data[offset : offset + PATH_COUNT_WIDTH], "big"
    )
    end = offset + PATH_COUNT_WIDTH + count * PATH_ID_WIDTH
    if end > len(path_data):
        return (
            "record at offset %d declares %d elements ending at byte %d but "
            "path_data is %d bytes" % (offset, count, end, len(path_data))
        )
    return None


def _path_element_count(path_data, offset):
    return int.from_bytes(path_data[offset : offset + PATH_COUNT_WIDTH], "big")


def validate_embedding(
    embedding,
    meta,
    path_bounds=None,
    vertex_strategy=None,
    edge_strategy=None,
):
    """All structural violations of ``embedding`` against ``meta``.

    Returns ``(code, detail)`` pairs, empty when the embedding is sound.
    ``path_bounds`` maps a path variable to its declared ``(lower,
    upper)`` hop bounds; morphism strategies default to no check.  This is
    the sanitizer's core and is usable standalone on hand-built (or
    hand-corrupted) embeddings.
    """
    findings = []
    id_data = embedding.id_data
    if len(id_data) % ENTRY_WIDTH:
        findings.append((
            "S201",
            "id_data is %d bytes, not a multiple of the %d-byte entry width"
            % (len(id_data), ENTRY_WIDTH),
        ))
        return findings  # the column walk below would misinterpret bytes
    columns = len(id_data) // ENTRY_WIDTH
    if meta is not None and columns != meta.column_count:
        findings.append((
            "S202",
            "embedding has %d columns, metadata declares %d"
            % (columns, meta.column_count),
        ))
    named = {}
    if meta is not None:
        for variable in meta.variables:
            named[meta.entry_column(variable)] = (
                variable,
                meta.entry_kind(variable),
            )
    structurally_sound = not findings
    for column, (flag, value) in enumerate(embedding.entries()):
        variable, kind = named.get(column, (None, None))
        label = " (%s)" % variable if variable else ""
        if flag not in _FLAG_NAMES:
            findings.append((
                "S203",
                "column %d%s has flag byte %d, expected ID(%d) or PATH(%d)"
                % (column, label, flag, FLAG_ID, FLAG_PATH),
            ))
            structurally_sound = False
            continue
        if kind is not None:
            expected = FLAG_PATH if kind == "p" else FLAG_ID
            if flag != expected:
                findings.append((
                    "S203",
                    "column %d%s has flag %s but metadata kind %r requires %s"
                    % (
                        column,
                        label,
                        _FLAG_NAMES[flag],
                        kind,
                        _FLAG_NAMES[expected],
                    ),
                ))
                structurally_sound = False
                continue
        if flag == FLAG_PATH:
            problem = _check_path_record(embedding.path_data, value)
            if problem is not None:
                findings.append(("S204", "column %d%s: %s" % (column, label, problem)))
                structurally_sound = False
                continue
            count = _path_element_count(embedding.path_data, value)
            if count and count % 2 == 0:
                # via = [e1, v1, ..., ek]: k hops make 2k-1 elements
                findings.append((
                    "S205",
                    "column %d%s holds %d path elements; via lists have odd "
                    "(or zero) length" % (column, label, count),
                ))
                structurally_sound = False
                continue
            if path_bounds and variable in path_bounds:
                hops = (count + 1) // 2
                lower, upper = path_bounds[variable]
                if not lower <= hops <= upper:
                    findings.append((
                        "S205",
                        "column %d%s holds a %d-hop path outside the declared "
                        "*%d..%d bounds" % (column, label, hops, lower, upper),
                    ))
    property_count: Optional[int] = 0
    try:
        for index, (start, length) in enumerate(
            iter_property_records(embedding.prop_data)
        ):
            payload = embedding.prop_data[start : start + length]
            try:
                _, consumed = PropertyValue.from_bytes(payload)
            except Exception as exc:  # noqa: BLE001 — any decode failure is the finding
                findings.append((
                    "S206",
                    "property %d does not deserialize: %s" % (index, exc),
                ))
            else:
                if consumed != length:
                    findings.append((
                        "S206",
                        "property %d consumed %d of its %d declared bytes"
                        % (index, consumed, length),
                    ))
            property_count = index + 1
    except ValueError as exc:
        findings.append(("S206", str(exc)))
        property_count = None
    if (
        property_count is not None
        and meta is not None
        and property_count != meta.property_count
    ):
        findings.append((
            "S207",
            "embedding carries %d properties, metadata declares %d"
            % (property_count, meta.property_count),
        ))
    if structurally_sound and meta is not None:
        for detail in morphism_violations(
            embedding,
            meta,
            vertex_strategy or DEFAULT_VERTEX_STRATEGY,
            edge_strategy or DEFAULT_EDGE_STRATEGY,
        ):
            findings.append(("S208", detail))
    return findings


class EmbeddingSanitizer:
    """Validates every embedding crossing an operator boundary.

    Attach to a compiled plan root (usually via
    ``CypherRunner(sanitize=...)``); every operator's output dataset is
    then wrapped in a validating map.  ``mode='raise'`` (the default)
    raises :class:`SanitizerError` on the first finding; ``mode='collect'``
    accumulates all findings on ``diagnostics`` and lets execution finish
    — the differential checker uses the latter.

    ``sample_every=N`` validates only every Nth sanitizer event (boundary
    crossing or operator-contract check) instead of all of them — the
    cheap spot-check a plan can drop to once the static flow verifier
    (:mod:`repro.analysis.flow`) has proven its layout contracts, keeping
    a tripwire against bugs outside the static model at a fraction of the
    full 2.5x overhead.
    """

    def __init__(self, vertex_strategy=None, edge_strategy=None, mode="raise",
                 sample_every=None):
        if mode not in ("raise", "collect"):
            raise ValueError("mode must be 'raise' or 'collect', not %r" % mode)
        if sample_every is not None and (
            not isinstance(sample_every, int) or sample_every < 1
        ):
            raise ValueError(
                "sample_every must be a positive integer, not %r" % sample_every
            )
        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self.mode = mode
        #: validate every Nth event only; None validates everything
        self.sample_every = sample_every
        #: sanitizer events seen (validated or sampled past)
        self.seen = 0
        #: structured findings (Diagnostic) in discovery order
        self.diagnostics = []
        #: embeddings validated so far, across all operator boundaries
        self.checked = 0
        #: path variable -> (lower, upper) hop bounds, merged at attach time
        self.path_bounds = {}

    def _sample(self):
        """True when this event is selected for validation."""
        self.seen += 1
        return self.sample_every is None or self.seen % self.sample_every == 0

    # Plan wiring --------------------------------------------------------------

    def attach(self, root):
        """Instrument the whole plan rooted at ``root``; returns self.

        Merges every operator's :meth:`sanitizer_context` (the declared
        path bounds), then resets the plan so already-built datasets are
        rebuilt with instrumentation.
        """
        for operator in _walk(root):
            context = operator.sanitizer_context()
            self.path_bounds.update(context.get("path_bounds", {}))
            operator._sanitizer = self
        root.reset()
        return self

    def detach(self, root):
        """Remove the instrumentation installed by :meth:`attach`."""
        for operator in _walk(root):
            operator._sanitizer = None
        root.reset()

    # Dataset wrapping (called from PhysicalOperator.evaluate) ------------------

    def instrument(self, operator, dataset):
        """Wrap ``dataset`` so every record is validated at this boundary."""
        meta = operator.meta
        bounds = self.path_bounds
        vertex_strategy = self.vertex_strategy
        edge_strategy = self.edge_strategy

        def check(embedding):
            if not self._sample():
                return embedding
            self.checked += 1
            for code, detail in validate_embedding(
                embedding,
                meta,
                path_bounds=bounds,
                vertex_strategy=vertex_strategy,
                edge_strategy=edge_strategy,
            ):
                self.report(operator, code, detail)
            return embedding

        return dataset.map(check, name="Sanitize(%s)" % operator.display)

    # Reporting ----------------------------------------------------------------

    def report(self, operator, code, detail):
        """Record one finding; raises in ``'raise'`` mode."""
        diagnostic = Diagnostic.of(
            code, "%s: %s" % (operator.describe(), detail)
        )
        self.diagnostics.append(diagnostic)
        if self.mode == "raise":
            raise SanitizerError([diagnostic], operator=operator.describe())

    def summary(self):
        return "sanitizer: %d embedding(s) checked, %d finding(s)" % (
            self.checked,
            len(self.diagnostics),
        )

    # Operator contract checks (invoked from instrumented operators) ------------

    def check_join_keys(
        self, operator, left_embedding, right_embedding, left_columns, right_columns
    ):
        """S209: the joined key columns must agree byte-for-byte."""
        if not self._sample():
            return
        for left_column, right_column in zip(left_columns, right_columns):
            left_bytes = left_embedding.entry_bytes(left_column)
            right_bytes = right_embedding.entry_bytes(right_column)
            if left_bytes != right_bytes:
                self.report(
                    operator,
                    "S209",
                    "join key columns %d/%d disagree byte-for-byte "
                    "(%s vs %s)"
                    % (
                        left_column,
                        right_column,
                        left_bytes.hex(),
                        right_bytes.hex(),
                    ),
                )

    def check_projection(self, operator, source, projected, keep_indices):
        """S209: projection must keep the chosen values bit-identical."""
        if not self._sample():
            return
        for index, source_index in enumerate(keep_indices):
            kept = projected.property_at(index).to_bytes()
            original = source.property_at(source_index).to_bytes()
            if kept != original:
                self.report(
                    operator,
                    "S209",
                    "projection altered property %d (source index %d): "
                    "%s became %s"
                    % (index, source_index, original.hex(), kept.hex()),
                )


def _walk(root):
    """Every operator of the plan, root first."""
    stack = [root]
    while stack:
        operator = stack.pop()
        yield operator
        stack.extend(operator.children)

"""Cardinality-estimate audit: per-operator q-error (§3.5 sanity check).

The greedy planner orders joins by statistics-based cardinality
estimates; when those estimates drift far from reality the chosen plan
can be arbitrarily bad without any visible failure.  The audit executes a
compiled plan once (sharing one dataflow result cache across all plan
nodes, the same plumbing as ``explain(analyze=True)``), computes each
operator's q-error — ``max(est/act, act/est)``, the standard estimation
quality metric — and emits an ``S211`` diagnostic for every operator
whose q-error exceeds the configured factor.
"""

from dataclasses import dataclass
from typing import List

from .diagnostics import Diagnostic

#: estimates within one order of magnitude are considered sane by default
DEFAULT_MAX_Q_ERROR = 10.0


def q_error(estimated, actual):
    """Smoothed q-error: ``max`` of both ratios with +1 against zeros."""
    return max(
        (estimated + 1.0) / (actual + 1.0),
        (actual + 1.0) / (estimated + 1.0),
    )


@dataclass
class EstimateRecord:
    """One operator's estimated vs. actual output cardinality."""

    operator: str
    estimated: float
    actual: int
    q_error: float


@dataclass
class EstimateAudit:
    """Outcome of :func:`audit_estimates` over one plan."""

    records: List[EstimateRecord]
    diagnostics: List[Diagnostic]
    max_q_error: float

    @property
    def worst(self):
        """The record with the largest q-error, or None on empty plans."""
        if not self.records:
            return None
        return max(self.records, key=lambda record: record.q_error)

    def format_table(self):
        """Aligned ``operator / est / actual / q-error`` lines."""
        lines = ["%-60s %10s %10s %8s" % ("operator", "est", "actual", "q-err")]
        for record in self.records:
            lines.append(
                "%-60s %10d %10d %8.1f"
                % (
                    record.operator[:60],
                    round(record.estimated),
                    record.actual,
                    record.q_error,
                )
            )
        return "\n".join(lines)


def audit_estimates(root, max_q_error=DEFAULT_MAX_Q_ERROR):
    """Compare every operator's estimate against its actual cardinality.

    Executes the plan rooted at ``root`` (bottom-up, one shared dataflow
    cache, so each dataflow operator runs once) and returns an
    :class:`EstimateAudit`.  Operators without an estimate — e.g. plans
    not produced by a planner — are skipped.
    """
    cache = {}
    records = []
    diagnostics = []
    for operator in _postorder(root):
        if operator.estimated_cardinality is None:
            continue
        actual = operator.actual_cardinality(cache)
        error = q_error(operator.estimated_cardinality, actual)
        records.append(
            EstimateRecord(
                operator=operator.describe(),
                estimated=operator.estimated_cardinality,
                actual=actual,
                q_error=error,
            )
        )
        if error > max_q_error:
            diagnostics.append(
                Diagnostic.of(
                    "S211",
                    "%s: estimated %d but produced %d rows (q-error %.1f > %.1f)"
                    % (
                        operator.describe(),
                        round(operator.estimated_cardinality),
                        actual,
                        error,
                        max_q_error,
                    ),
                )
            )
    return EstimateAudit(
        records=records, diagnostics=diagnostics, max_q_error=max_q_error
    )


def audit_bound_soundness(root, statistics):
    """Check observed cardinalities against the certified upper bounds.

    The static cost-bound analyzer (:mod:`repro.analysis.costbound`)
    proves a worst-case output cardinality per operator; executing the
    plan must never observe more rows than that — if it does, the bound
    derivation itself is unsound.  Returns the list of ``S406``
    diagnostics (empty when every bound held).  This is the test-only
    companion of the q-error audit: q-error measures how *tight* the
    estimates are, this measures whether the *bounds* are bounds —
    groundwork for letting the adaptive planner trust them.
    """
    from .costbound import certify_plan

    certificate = certify_plan(root, statistics)
    bounds = {}
    for operator, record in zip(_postorder(root), certificate.records):
        bounds[id(operator)] = record
    cache = {}
    diagnostics = []
    for operator in _postorder(root):
        record = bounds[id(operator)]
        actual = operator.actual_cardinality(cache)
        if actual > record.cardinality_bound:
            diagnostics.append(
                Diagnostic.of(
                    "S406",
                    "%s: observed %d rows but the certified upper bound "
                    "is %s — the bound derivation is unsound"
                    % (operator.describe(), actual, record.cardinality_bound),
                )
            )
    return diagnostics


def _postorder(root):
    """Children before parents, so leaves are measured first."""
    stack = [(root, False)]
    while stack:
        operator, expanded = stack.pop()
        if expanded:
            yield operator
        else:
            stack.append((operator, True))
            for child in reversed(operator.children):
                stack.append((child, False))

"""Physical-plan verifier: structural invariants of operator trees.

Planners are the most bug-prone layer of the pipeline — join ordering,
column book-keeping and predicate push-down all mutate
:class:`~repro.engine.embedding.EmbeddingMetaData` incrementally, and a
single off-by-one silently produces wrong answers instead of crashing.
The verifier walks any plan tree (from the greedy, exhaustive or naive
planner alike) and checks the invariants every correct plan satisfies:

* metadata is present and its columns form a contiguous ``0..n-1`` range
  with valid entry kinds;
* every variable is bound exactly once: binary operators introduce no
  accidental rebinding beyond their declared join variables, expands
  bind a fresh end vertex (unless closing) and a fresh edge;
* filters only reference variables and properties their input provides;
* the root binds every query variable with the right kind and retains
  every property the RETURN clause will read;
* morphism strategies are consistent across the whole tree;
* cardinality estimates are present, finite and non-negative.

``verify_plan`` raises :class:`PlanVerificationError` listing every
violation; :class:`PlanVerifier` returns them for programmatic use.
"""

import math

from repro.cypher.ast import FunctionCall, PropertyAccess
from repro.engine.operators.expand import ExpandEmbeddings
from repro.engine.operators.filter_project import (
    ProjectEmbeddings,
    SelectEmbeddings,
)
from repro.engine.operators.join import CartesianEmbeddings, JoinEmbeddings
from repro.engine.operators.leaves import (
    SelectAndProjectEdges,
    SelectAndProjectVertices,
)
from repro.engine.operators.value_join import JoinEmbeddingsOnProperty

_VALID_KINDS = {"v", "e", "p"}


class PlanVerificationError(AssertionError):
    """A physical plan violates a structural invariant."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = ["physical plan failed verification:"]
        lines += ["  - %s" % violation for violation in self.violations]
        super().__init__("\n".join(lines))


class Violation:
    """One broken invariant: a stable rule name plus operator context."""

    __slots__ = ("rule", "operator", "detail")

    def __init__(self, rule, operator, detail):
        self.rule = rule
        self.operator = operator
        self.detail = detail

    def __str__(self):
        return "[%s] %s: %s" % (self.rule, self.operator, self.detail)

    def __repr__(self):
        return "Violation(%r, %r, %r)" % (self.rule, self.operator, self.detail)


def verify_plan(root, handler=None, vertex_strategy=None, edge_strategy=None):
    """Verify ``root``; raises :class:`PlanVerificationError` on violation.

    ``handler`` enables the whole-query checks (root coverage, RETURN
    property retention); the strategy arguments pin the expected morphism
    configuration when given.
    """
    violations = PlanVerifier(
        handler=handler,
        vertex_strategy=vertex_strategy,
        edge_strategy=edge_strategy,
    ).verify(root)
    if violations:
        raise PlanVerificationError(violations)
    return True


class PlanVerifier:
    """Collects invariant violations from a physical plan tree."""

    def __init__(self, handler=None, vertex_strategy=None, edge_strategy=None):
        self.handler = handler
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self._violations = []
        self._strategies = set()

    def verify(self, root):
        """All violations in the tree under (and including) ``root``."""
        self._violations = []
        self._strategies = set()
        self._walk(root)
        self._check_strategies(root)
        if self.handler is not None:
            self._check_root(root)
        return list(self._violations)

    # Traversal ------------------------------------------------------------------

    def _flag(self, rule, op, detail):
        self._violations.append(Violation(rule, op.describe(), detail))

    def _walk(self, op):
        for child in op.children:
            self._walk(child)
        self._check_meta(op)
        self._check_cardinality(op)
        if isinstance(op, JoinEmbeddings):
            self._check_join(op)
        elif isinstance(op, (CartesianEmbeddings, JoinEmbeddingsOnProperty)):
            self._check_disjoint_join(op)
        elif isinstance(op, ExpandEmbeddings):
            self._check_expand(op)
        elif isinstance(op, SelectEmbeddings):
            self._check_select(op)
        elif isinstance(op, ProjectEmbeddings):
            self._check_project(op)
        elif isinstance(op, (SelectAndProjectVertices, SelectAndProjectEdges)):
            self._check_leaf(op)
        if isinstance(op, (JoinEmbeddings, CartesianEmbeddings,
                           JoinEmbeddingsOnProperty, ExpandEmbeddings)):
            self._strategies.add((op.vertex_strategy, op.edge_strategy))

    # Per-operator invariants ----------------------------------------------------

    def _check_meta(self, op):
        meta = op.meta
        if meta is None:
            self._flag("meta-missing", op, "operator has no EmbeddingMetaData")
            return
        columns = sorted(meta.entry_column(v) for v in meta.variables)
        if columns != list(range(len(columns))):
            self._flag(
                "meta-columns", op,
                "entry columns %s are not the contiguous range 0..%d"
                % (columns, len(columns) - 1),
            )
        for variable in meta.variables:
            kind = meta.entry_kind(variable)
            if kind not in _VALID_KINDS:
                self._flag(
                    "meta-kind", op,
                    "variable %r has invalid kind %r" % (variable, kind),
                )
        for index, (variable, key) in enumerate(meta.property_entries()):
            if not meta.has_variable(variable):
                self._flag(
                    "meta-property-orphan", op,
                    "property %s.%s has no backing variable entry"
                    % (variable, key),
                )
            if meta.property_index(variable, key) != index:
                self._flag(
                    "meta-property-index", op,
                    "property %s.%s maps to index %d, expected %d"
                    % (variable, key, meta.property_index(variable, key), index),
                )

    def _check_cardinality(self, op):
        estimate = op.estimated_cardinality
        if estimate is None:
            self._flag(
                "cardinality-missing", op,
                "planner left no cardinality estimate",
            )
            return
        if not math.isfinite(estimate) or estimate < 0:
            self._flag(
                "cardinality-invalid", op,
                "estimate %r is not a finite non-negative number" % estimate,
            )

    def _check_join(self, op):
        left, right = op.children
        if left.meta is None or right.meta is None:
            return
        join_variables = set(op.join_variables)
        left_variables = set(left.meta.variables)
        right_variables = set(right.meta.variables)
        for variable in op.join_variables:
            for side, bound in (("left", left_variables), ("right", right_variables)):
                if variable not in bound:
                    self._flag(
                        "join-column-missing", op,
                        "join variable %r is not bound by the %s input"
                        % (variable, side),
                    )
        rebound = (left_variables & right_variables) - join_variables
        if rebound:
            self._flag(
                "binding-duplicated", op,
                "variables %s are bound by both inputs but are not join "
                "variables" % sorted(rebound),
            )
        if op.meta is not None:
            expected = left_variables | right_variables
            if set(op.meta.variables) != expected:
                self._flag(
                    "binding-dropped", op,
                    "output binds %s, inputs bind %s"
                    % (sorted(op.meta.variables), sorted(expected)),
                )

    def _check_disjoint_join(self, op):
        left, right = op.children
        if left.meta is None or right.meta is None:
            return
        shared = set(left.meta.variables) & set(right.meta.variables)
        if shared:
            self._flag(
                "binding-duplicated", op,
                "%s binds %s on both inputs; only JoinEmbeddings may "
                "overlap" % (type(op).__name__, sorted(shared)),
            )

    def _check_expand(self, op):
        (child,) = op.children
        if child.meta is None:
            return
        bound = set(child.meta.variables)
        if op.start_variable not in bound:
            self._flag(
                "expand-start-unbound", op,
                "expand starts at %r which the input does not bind"
                % op.start_variable,
            )
        edge_variable = op.query_edge.variable
        if edge_variable in bound:
            self._flag(
                "binding-duplicated", op,
                "path variable %r is already bound by the input" % edge_variable,
            )
        if op.closing:
            if op.end_variable not in bound:
                self._flag(
                    "expand-close-unbound", op,
                    "closing expand targets %r which the input does not bind"
                    % op.end_variable,
                )
        elif op.end_variable in bound:
            self._flag(
                "binding-duplicated", op,
                "non-closing expand would rebind %r" % op.end_variable,
            )

    def _check_select(self, op):
        (child,) = op.children
        if child.meta is None:
            return
        meta = child.meta
        bound = set(meta.variables)
        unbound = op.cnf.variables() - bound
        if unbound:
            self._flag(
                "select-unbound", op,
                "predicate references unbound variables %s" % sorted(unbound),
            )
        for variable, keys in op.cnf.property_keys().items():
            if variable not in bound:
                continue  # already reported as select-unbound
            if meta.entry_kind(variable) == "p":
                continue  # paths carry no projected properties
            for key in sorted(keys):
                if not meta.has_property(variable, key):
                    self._flag(
                        "select-property-missing", op,
                        "predicate reads %s.%s which the input does not "
                        "project" % (variable, key),
                    )

    def _check_project(self, op):
        (child,) = op.children
        if child.meta is None or op.meta is None:
            return
        for variable, key in op.keep_pairs:
            if not child.meta.has_property(variable, key):
                self._flag(
                    "project-source-missing", op,
                    "projection keeps %s.%s which the input does not "
                    "provide" % (variable, key),
                )
            if not op.meta.has_property(variable, key):
                self._flag(
                    "project-dropped", op,
                    "projection output lost %s.%s" % (variable, key),
                )
        if set(op.meta.variables) != set(child.meta.variables):
            self._flag(
                "binding-dropped", op,
                "projection changed the bound variables",
            )

    def _check_leaf(self, op):
        if op.meta is None:
            return
        if isinstance(op, SelectAndProjectVertices):
            variable = op.query_vertex.variable
            expected_kinds = {variable: "v"}
        else:
            edge = op.query_edge
            expected_kinds = {
                edge.source: "v",
                edge.variable: "p" if edge.is_variable_length else "e",
                edge.target: "v",
            }
        for variable, kind in expected_kinds.items():
            if not op.meta.has_variable(variable):
                self._flag(
                    "leaf-unbound", op,
                    "leaf does not bind its own variable %r" % variable,
                )
            elif op.meta.entry_kind(variable) != kind:
                self._flag(
                    "binding-kind-mismatch", op,
                    "variable %r bound as %r, expected %r"
                    % (variable, op.meta.entry_kind(variable), kind),
                )
        for variable, key in op.meta.property_entries():
            if key not in op.property_keys:
                self._flag(
                    "leaf-property-unprojected", op,
                    "meta promises %s.%s but the leaf only projects %s"
                    % (variable, key, op.property_keys),
                )

    # Whole-plan invariants ------------------------------------------------------

    def _check_strategies(self, root):
        if len(self._strategies) > 1:
            self._flag(
                "morphism-inconsistent", root,
                "operators disagree on morphism strategies: %s"
                % sorted(
                    (v.name, e.name) for v, e in self._strategies
                ),
            )
        if self._strategies and (
            self.vertex_strategy is not None or self.edge_strategy is not None
        ):
            vertex, edge = next(iter(self._strategies))
            if self.vertex_strategy is not None and vertex != self.vertex_strategy:
                self._flag(
                    "morphism-inconsistent", root,
                    "plan uses vertex strategy %s, runner configured %s"
                    % (vertex.name, self.vertex_strategy.name),
                )
            if self.edge_strategy is not None and edge != self.edge_strategy:
                self._flag(
                    "morphism-inconsistent", root,
                    "plan uses edge strategy %s, runner configured %s"
                    % (edge.name, self.edge_strategy.name),
                )

    def _check_root(self, root):
        meta = root.meta
        if meta is None:
            return
        handler = self.handler
        bound = set(meta.variables)
        for variable in handler.vertices:
            if variable not in bound:
                self._flag(
                    "variable-unbound", root,
                    "query vertex %r is not bound by the plan root" % variable,
                )
            elif meta.entry_kind(variable) != "v":
                self._flag(
                    "binding-kind-mismatch", root,
                    "vertex %r bound as kind %r"
                    % (variable, meta.entry_kind(variable)),
                )
        for variable, edge in handler.edges.items():
            expected = "p" if edge.is_variable_length else "e"
            if variable not in bound:
                self._flag(
                    "variable-unbound", root,
                    "query edge %r is not bound by the plan root" % variable,
                )
            elif meta.entry_kind(variable) != expected:
                self._flag(
                    "binding-kind-mismatch", root,
                    "edge %r bound as kind %r, expected %r"
                    % (variable, meta.entry_kind(variable), expected),
                )
        returns = handler.ast.returns
        if returns is None:
            return
        expressions = [item.expression for item in returns.items]
        expressions += [order.expression for order in returns.order_by]
        for expression in expressions:
            if isinstance(expression, FunctionCall):
                expression = expression.argument
            if not isinstance(expression, PropertyAccess):
                continue
            variable, key = expression.variable, expression.key
            if variable not in bound or meta.entry_kind(variable) == "p":
                continue
            if not meta.has_property(variable, key):
                self._flag(
                    "return-property-dropped", root,
                    "RETURN reads %s.%s which the root does not retain"
                    % (variable, key),
                )

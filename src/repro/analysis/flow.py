"""Static embedding-layout flow verifier (``S3xx``).

The ``S2xx`` sanitizer proves the §3.3 byte-layout contracts *per
embedding at runtime*, at roughly 2.5x execution cost.  This module
proves the same contracts *per plan at compile time*: an abstract
interpretation walks the physical operator tree bottom-up, propagating a
symbolic :class:`EmbeddingLayout` — column kinds in column order, the
physical property-record sequence, path-slot hop bounds and a morphism
guarantee bit — through the transfer rule of every operator in
``engine/operators/*``, then compares the derived layout against the
metadata each operator actually declares.  The correspondence to the
dynamic checks is one-to-one:

=====  ==============================  ============================
code   statically proves               dynamic mirror
=====  ==============================  ============================
S301   merge width arithmetic          S201 / S202
S302   entry kinds and column order    S203
S303   path slots carry sane bounds    S204 / S205
S304   property sequence provenance    S206 / S207
S305   morphism guarantee per node     S208
S306   join-key offset compatibility   S209 (join half)
S307   projection column provenance    S209 (projection half)
S308   unknown operator (unprovable)   —
=====  ==============================  ============================

A plan whose :class:`FlowReport` is ``proven`` cannot produce an ``S2xx``
finding under fully sanitized execution (the property suite pins this
soundness claim), which is what licenses dropping the runner to
``sanitize="sample"`` — or all the way off — on hot paths.
"""

from typing import Dict, List, Optional, Tuple

from .diagnostics import Diagnostic, sort_diagnostics

#: pairs like ``('a', 'v')``: variable and entry kind in column order
_Entries = Tuple[Tuple[str, str], ...]
#: pairs like ``('a', 'name')``: the physical property-record sequence
_Props = Tuple[Tuple[str, str], ...]


def operator_span(operator):
    """Best-effort source :class:`~repro.cypher.span.Span` for an operator.

    Leaves and expansions carry the pattern element they were compiled
    from; a selection points at its first predicate atom.  Joins and
    projections synthesize columns from *two* source locations (or none),
    so they return ``None`` — the diagnostic still names the operator.
    """
    query_vertex = getattr(operator, "query_vertex", None)
    if query_vertex is not None:
        return getattr(query_vertex, "span", None)
    query_edge = getattr(operator, "query_edge", None)
    if query_edge is not None:
        return getattr(query_edge, "span", None)
    cnf = getattr(operator, "cnf", None)
    if cnf is not None:
        for clause in getattr(cnf, "clauses", ()):
            for atom in clause.atoms:
                for side in (atom.comparison.left, atom.comparison.right):
                    span = getattr(side, "span", None)
                    if span is not None:
                        return span
                span = getattr(atom.comparison, "span", None)
                if span is not None:
                    return span
    return None


class FlowVerificationError(AssertionError):
    """A plan failed the static layout-flow verification."""

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        lines = ["plan failed layout-flow verification with %d finding(s):"
                 % len(self.diagnostics)]
        lines += ["  " + d.format() for d in self.diagnostics]
        super().__init__("\n".join(lines))


class EmbeddingLayout:
    """The abstract value: everything the §3.3 layout determines statically.

    ``entries`` is the derived ``(variable, kind)`` tuple in column order
    — column ``i`` occupies ``id_data`` bytes ``[i*9, (i+1)*9)``.
    ``properties`` is the derived *physical* record sequence of
    ``prop_data`` as ``(variable, key)`` pairs; in a sound plan it equals
    the operator's property mapping enumerated by index (a pair loaded on
    both join sides would leave dead bytes and break the equality — the
    static analogue of ``S207``).  ``path_bounds`` maps each path variable
    to its declared ``*lower..upper`` hop bounds, and ``morphism_ok``
    records whether every embedding this operator emits provably satisfies
    the configured morphism strategies.
    """

    __slots__ = ("entries", "properties", "path_bounds", "morphism_ok")

    def __init__(self, entries=(), properties=(), path_bounds=None,
                 morphism_ok=True):
        self.entries: _Entries = tuple(entries)
        self.properties: _Props = tuple(properties)
        self.path_bounds: Dict[str, Tuple[int, int]] = dict(path_bounds or {})
        self.morphism_ok = morphism_ok

    @property
    def variables(self):
        return [variable for variable, _kind in self.entries]

    def kind_of(self, variable):
        for candidate, kind in self.entries:
            if candidate == variable:
                return kind
        return None

    def column_of(self, variable):
        for column, (candidate, _kind) in enumerate(self.entries):
            if candidate == variable:
                return column
        return None

    def id_width(self):
        """The derived ``id_data`` byte width (merge width arithmetic)."""
        from repro.engine.embedding import ENTRY_WIDTH

        return len(self.entries) * ENTRY_WIDTH

    def __repr__(self):
        return "EmbeddingLayout(%r, %r, bounds=%r, morphism_ok=%r)" % (
            self.entries, self.properties, self.path_bounds, self.morphism_ok
        )


class FlowReport:
    """Outcome of one :func:`verify_flow` pass over a plan."""

    def __init__(self, root, diagnostics, layouts):
        self.root = root
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        #: ``id(operator)`` → derived :class:`EmbeddingLayout`
        self._layouts = dict(layouts)

    def layout_of(self, operator) -> Optional[EmbeddingLayout]:
        return self._layouts.get(id(operator))

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def proven(self):
        """True when the plan's layout contracts hold *statically*.

        Any error refutes the plan; an ``S308`` warning (operator without
        a transfer rule) merely leaves it unproven — the plan may be
        legal, but the verifier cannot certify it.
        """
        return not self.diagnostics

    def format_summary(self):
        return (
            "flow: %d operator(s) interpreted, %d error(s), %d warning(s)"
            " — %s"
            % (
                len(self._layouts),
                len(self.errors),
                len(self.warnings),
                "layout proven" if self.proven else "NOT proven",
            )
        )


def verify_flow(root, vertex_strategy=None, edge_strategy=None):
    """Abstractly interpret the plan under ``root``; returns a report.

    The strategies pin the morphism configuration the plan will execute
    under (defaulting like the engine does); a node whose output cannot
    be proven to satisfy them is flagged ``S305`` — the sanitizer checks
    morphism at *every* operator boundary, so the static pass must too.
    """
    return _FlowVerifier(vertex_strategy, edge_strategy).verify(root)


def assert_flow(root, vertex_strategy=None, edge_strategy=None):
    """Like :func:`verify_flow` but raises unless the plan is proven."""
    report = verify_flow(
        root, vertex_strategy=vertex_strategy, edge_strategy=edge_strategy
    )
    if not report.proven:
        raise FlowVerificationError(report.diagnostics)
    return report


class _FlowVerifier:
    """One verification pass: transfer rules + declared-metadata checks."""

    def __init__(self, vertex_strategy, edge_strategy):
        from repro.engine.morphism import (
            DEFAULT_EDGE_STRATEGY,
            DEFAULT_VERTEX_STRATEGY,
        )

        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self._diagnostics = []
        self._layouts = {}

    def verify(self, root):
        self._visit(root)
        return FlowReport(
            root, sort_diagnostics(self._diagnostics), self._layouts
        )

    # Reporting ----------------------------------------------------------------

    def _flag(self, code, operator, detail):
        self._diagnostics.append(
            Diagnostic.of(
                code,
                "%s: %s" % (operator.describe(), detail),
                span=operator_span(operator),
            )
        )

    # Traversal ----------------------------------------------------------------

    def _visit(self, operator):
        child_layouts = [self._visit(child) for child in operator.children]
        layout = self._transfer(operator, child_layouts)
        self._layouts[id(operator)] = layout
        self._check_declared(operator, layout)
        self._check_morphism(operator, layout)
        return layout

    def _transfer(self, op, child_layouts):
        """The abstract transfer function of one operator."""
        from repro.engine.operators.expand import ExpandEmbeddings
        from repro.engine.operators.filter_project import (
            ProjectEmbeddings,
            SelectEmbeddings,
        )
        from repro.engine.operators.join import (
            CartesianEmbeddings,
            JoinEmbeddings,
        )
        from repro.engine.operators.leaves import (
            SelectAndProjectEdges,
            SelectAndProjectVertices,
        )
        from repro.engine.operators.value_join import JoinEmbeddingsOnProperty

        if isinstance(op, SelectAndProjectVertices):
            return self._leaf_vertex(op)
        if isinstance(op, SelectAndProjectEdges):
            return self._leaf_edge(op)
        if isinstance(op, JoinEmbeddings):
            return self._join(op, child_layouts, op.join_variables)
        if isinstance(op, CartesianEmbeddings):
            return self._join(op, child_layouts, [])
        if isinstance(op, JoinEmbeddingsOnProperty):
            return self._value_join(op, child_layouts)
        if isinstance(op, ExpandEmbeddings):
            return self._expand(op, child_layouts[0])
        if isinstance(op, SelectEmbeddings):
            return child_layouts[0]
        if isinstance(op, ProjectEmbeddings):
            return self._project(op, child_layouts[0])
        return self._unknown(op, child_layouts)

    # Transfer rules -----------------------------------------------------------

    def _leaf_vertex(self, op):
        variable = op.query_vertex.variable
        return EmbeddingLayout(
            entries=((variable, "v"),),
            properties=tuple((variable, key) for key in op.property_keys),
            morphism_ok=True,  # one vertex column is trivially injective
        )

    def _leaf_edge(self, op):
        from repro.engine.morphism import MatchStrategy

        edge = op.query_edge
        entries = [(edge.source, "v"), (edge.variable, "e")]
        if not op.is_loop:
            entries.append((edge.target, "v"))
        # Under vertex isomorphism a data self-loop binds one vertex to
        # both endpoint columns; only ``distinct_endpoints`` (or a loop
        # edge, which has a single endpoint column) rules that out.
        morphism_ok = (
            self.vertex_strategy is not MatchStrategy.ISOMORPHISM
            or op.is_loop
            or op.distinct_endpoints
        )
        return EmbeddingLayout(
            entries=entries,
            properties=tuple((edge.variable, key) for key in op.property_keys),
            morphism_ok=morphism_ok,
        )

    def _join(self, op, child_layouts, join_variables):
        left, right = child_layouts
        drop_columns = set()
        for variable in join_variables:
            left_kind = left.kind_of(variable)
            right_kind = right.kind_of(variable)
            if left_kind is None or right_kind is None:
                self._flag(
                    "S306", op,
                    "join variable %r is not bound on the %s side"
                    % (variable, "left" if left_kind is None else "right"),
                )
                continue
            if "p" in (left_kind, right_kind):
                self._flag(
                    "S306", op,
                    "join variable %r is a PATH column — its entry holds a "
                    "path_data offset, not a comparable identifier" % variable,
                )
                continue
            if left_kind != right_kind:
                self._flag(
                    "S306", op,
                    "join variable %r has kind %r on the left but %r on the "
                    "right" % (variable, left_kind, right_kind),
                )
                continue
            drop_columns.add(right.column_of(variable))
        return self._combine(op, left, right, drop_columns)

    def _value_join(self, op, child_layouts):
        left, right = child_layouts
        for side, layout, pair in (
            ("left", left, op.left_property),
            ("right", right, op.right_property),
        ):
            if tuple(pair) not in layout.properties:
                self._flag(
                    "S306", op,
                    "%s join key %s.%s is not projected into the %s input"
                    % (side, pair[0], pair[1], side),
                )
        return self._combine(op, left, right, set())

    def _combine(self, op, left, right, drop_columns):
        """The static mirror of :meth:`EmbeddingMetaData.combine`."""
        entries = list(left.entries)
        bound = {variable for variable, _kind in entries}
        for column, (variable, kind) in enumerate(right.entries):
            if column in drop_columns:
                continue
            if variable in bound:
                self._flag(
                    "S302", op,
                    "variable %r is bound on both inputs but not joined — "
                    "the merged embedding would carry it twice" % variable,
                )
                continue
            bound.add(variable)
            entries.append((variable, kind))
        bounds = dict(left.path_bounds)
        bounds.update(right.path_bounds)
        return EmbeddingLayout(
            entries=entries,
            # prop_data is appended wholesale: the physical sequence is
            # the concatenation, duplicates and all (§3.3 append-only)
            properties=left.properties + right.properties,
            path_bounds=bounds,
            # the join's compiled morphism check (or its vacuous-truth
            # condition) guarantees the configured strategies on output
            morphism_ok=True,
        )

    def _expand(self, op, child):
        edge = op.query_edge
        start_kind = child.kind_of(op.start_variable)
        if start_kind != "v":
            self._flag(
                "S306", op,
                "expansion start %r is %s in the input"
                % (
                    op.start_variable,
                    "not bound" if start_kind is None
                    else "a %r column, not a vertex" % start_kind,
                ),
            )
        if op.closing and child.kind_of(op.end_variable) != "v":
            self._flag(
                "S306", op,
                "closing expansion end %r is not a vertex column of the "
                "input" % op.end_variable,
            )
        lower, upper = edge.lower, edge.upper
        if lower is None or upper is None or lower < 0 or upper < lower:
            self._flag(
                "S303", op,
                "path %r declares malformed hop bounds *%s..%s"
                % (edge.variable, lower, upper),
            )
            lower, upper = 0, 0  # keep interpreting with a harmless bound
        entries = list(child.entries)
        entries.append((edge.variable, "p"))
        if not op.closing:
            entries.append((op.end_variable, "v"))
        bounds = dict(child.path_bounds)
        bounds[edge.variable] = (lower, upper)
        return EmbeddingLayout(
            entries=entries,
            properties=child.properties,
            path_bounds=bounds,
            # the superstep join checks every new path element (and the
            # unbound end) against the input's vertex/edge id sets, so
            # the guarantee carries over from the input
            morphism_ok=child.morphism_ok,
        )

    def _project(self, op, child):
        known = set(child.properties)
        kept = []
        for variable, key in op.keep_pairs:
            if (variable, key) not in known:
                self._flag(
                    "S307", op,
                    "projection keeps %s.%s but the input provides no such "
                    "property record" % (variable, key),
                )
                continue
            kept.append((variable, key))
        return EmbeddingLayout(
            entries=child.entries,
            properties=kept,
            path_bounds=child.path_bounds,
            morphism_ok=child.morphism_ok,
        )

    def _unknown(self, op, child_layouts):
        self._flag(
            "S308", op,
            "no layout transfer rule for %s — the plan cannot be statically "
            "proven" % type(op).__name__,
        )
        # Fall back to trusting the declared metadata so interpretation
        # can continue above this node; the report stays unproven.
        meta = op.meta
        if meta is None:
            return EmbeddingLayout()
        bounds = {}
        for layout in child_layouts:
            bounds.update(layout.path_bounds)
        bounds.update(op.sanitizer_context().get("path_bounds", {}))
        return EmbeddingLayout(
            entries=tuple(
                (variable, meta.entry_kind(variable))
                for variable in meta.variables
            ),
            properties=tuple(meta.property_entries()),
            path_bounds=bounds,
            morphism_ok=all(
                layout.morphism_ok for layout in child_layouts
            ) if child_layouts else True,
        )

    # Declared-metadata comparison ----------------------------------------------

    def _check_declared(self, op, layout):
        """Derived layout vs. the metadata the operator declares."""
        from repro.engine.embedding import ENTRY_WIDTH

        meta = op.meta
        if meta is None:
            self._flag("S301", op, "operator declares no metadata")
            return
        if meta.column_count != len(layout.entries):
            self._flag(
                "S301", op,
                "derived layout has %d column(s) (%d id_data bytes) but the "
                "metadata declares %d (%d bytes)"
                % (
                    len(layout.entries),
                    layout.id_width(),
                    meta.column_count,
                    meta.column_count * ENTRY_WIDTH,
                ),
            )
        for column, (variable, kind) in enumerate(layout.entries):
            if not meta.has_variable(variable):
                self._flag(
                    "S302", op,
                    "derived column %d binds %r but the metadata does not "
                    "map it" % (column, variable),
                )
                continue
            declared_column = meta.entry_column(variable)
            declared_kind = meta.entry_kind(variable)
            if declared_column != column:
                self._flag(
                    "S302", op,
                    "%r derives to column %d but the metadata maps it to %d"
                    % (variable, column, declared_column),
                )
            if declared_kind != kind:
                self._flag(
                    "S302", op,
                    "%r derives to kind %r but the metadata declares %r"
                    % (variable, kind, declared_kind),
                )
        declared_props = tuple(meta.property_entries())
        if declared_props != layout.properties:
            self._flag(
                "S304", op,
                "derived property sequence %s disagrees with the declared "
                "mapping %s"
                % (
                    _format_pairs(layout.properties),
                    _format_pairs(declared_props),
                ),
            )
        for variable, kind in layout.entries:
            if kind == "p" and variable not in layout.path_bounds:
                self._flag(
                    "S303", op,
                    "path column %r has no declared hop bounds" % variable,
                )

    def _check_morphism(self, op, layout):
        """S305: the configured strategies must hold at every boundary.

        The sanitizer validates morphism per embedding at *every* operator
        output, so an unguaranteed interior node is a refutation even if a
        downstream join would filter the violating embeddings out.
        """
        if not layout.morphism_ok:
            self._flag(
                "S305", op,
                "output is not statically guaranteed to satisfy vertex=%s, "
                "edge=%s"
                % (self.vertex_strategy.value, self.edge_strategy.value),
            )


def _format_pairs(pairs):
    if not pairs:
        return "(none)"
    return ", ".join("%s.%s" % pair for pair in pairs)

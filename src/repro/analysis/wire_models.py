"""The checked wire-protocol models (Layer 2 of ``repro wirecheck``).

Each function builds a :class:`~repro.analysis.model.Model` of one
protocol the multi-process runtime (:mod:`repro.dataflow.workers`)
depends on, small enough for exhaustive exploration yet faithful to
the shipped code's actual rules:

* :func:`cancel_done_model` — the cancel/``done`` confirmation
  protocol: a worker keeps a cancelled job's mark until the parent
  confirms every dispatched task collected.
* :func:`spec_cache_model` — spec-cache LRU mirroring: the pool
  replays the worker's ``OrderedDict`` touch/insert/evict sequence, so
  a shipped key is always still cached worker-side.
* :func:`ring_model` — the SPSC ring's cursor arithmetic: one-slot-
  empty reserve, contiguous payloads, tail-skip wrap.
* :func:`resident_model` — resident-source eviction: per-batch
  pinning, frees appended *after* the batch's tasks, and the parent's
  byte-budget mirror of the worker's resident set.
* :func:`crash_scope_model` — crash-notice scoping: a worker death
  fails exactly the jobs that placed tasks on it.

PR 8's review pass found three of these protocols wrong by hand; each
bug is **re-planted** here as a named mutation (`MUTATIONS`) producing
a deliberately broken model the checker must refute with a short
counterexample trace:

========================  =======================================
mutation                  the PR 8 bug it replants
========================  =======================================
``spec_cache:desync``     mirror kept as an unordered set that
                          never replays evictions — the pool stops
                          re-shipping specs the worker dropped
``crash_scope:``          a crash notice failed *every* active
``shared_notice_bug``     job, not just those placed on the dead
                          worker
``cancel_done:``          size-bounded pruning of the cancelled
``prune_marks``           set forgot marks for jobs whose tasks
                          were still queued
========================  =======================================

plus extra mutations guarding the nearly-wrong edges: ``early_done``
(confirmation sent before every task is accounted), ``no_reserve``
(the ring's one-slot-empty reserve dropped), ``no_pin`` /
``no_free_on_evict`` / ``unpinned_reorder`` (resident-eviction
batch-consistency defects).
"""

from dataclasses import dataclass, replace
from typing import Optional

from .model import Model, check

__all__ = [
    "MODELS",
    "MUTATIONS",
    "cancel_done_model",
    "check_all",
    "crash_scope_model",
    "resident_model",
    "ring_model",
    "spec_cache_model",
]


def _invalid_mutation(model, mutation):
    raise ValueError("unknown %s mutation %r" % (model, mutation))


# --- cancel / done confirmation ---------------------------------------------


@dataclass(frozen=True)
class _CancelPool:
    dispatched: tuple
    cancel_sent: tuple
    collected: tuple
    done_sent: tuple


@dataclass(frozen=True)
class _CancelWorker:
    marks: tuple
    ever_cancelled: frozenset
    ever_done: frozenset
    violation: Optional[str] = None


def _set_at(values, index, value):
    items = list(values)
    items[index] = value
    return tuple(items)


def cancel_done_model(mutation=None, jobs=2):
    """Cancel/``done`` confirmation over a dedicated cancel pipe.

    Mutations: ``"early_done"`` sends the confirmation before every
    dispatched task is collected; ``"prune_marks"`` bounds the worker's
    cancelled-mark set at one entry with FIFO eviction (the PR 8
    cancellation-mark leak).
    """
    if mutation not in (None, "early_done", "prune_marks"):
        _invalid_mutation("cancel_done", mutation)
    model = Model("cancel_done" + (":" + mutation if mutation else ""))
    model.machine("pool", _CancelPool(
        dispatched=(False,) * jobs,
        cancel_sent=(False,) * jobs,
        collected=(0,) * jobs,
        done_sent=(False,) * jobs,
    ))
    model.machine("worker", _CancelWorker(
        marks=(), ever_cancelled=frozenset(), ever_done=frozenset(),
    ))
    model.channel("req", capacity=jobs)
    model.channel("cancel", capacity=2 * jobs)
    model.channel("resp", capacity=jobs)

    for job in range(jobs):
        model.internal(
            "pool", "dispatch[%d]" % job,
            lambda s, j=job: not s.dispatched[j],
            lambda s, j=job: (
                replace(s, dispatched=_set_at(s.dispatched, j, True)),
                [("req", ("task", j))],
            ),
        )
        model.internal(
            "pool", "cancel[%d]" % job,
            lambda s, j=job: s.dispatched[j] and not s.cancel_sent[j],
            lambda s, j=job: (
                replace(s, cancel_sent=_set_at(s.cancel_sent, j, True)),
                [("cancel", ("cancel", j))],
            ),
        )
        model.internal(
            "pool", "confirm[%d]" % job,
            lambda s, j=job: (
                s.cancel_sent[j]
                and not s.done_sent[j]
                # the load-bearing guard: every dispatched task of the
                # job must be accounted for before ``done`` may go out
                and (mutation == "early_done" or s.collected[j] >= 1)
            ),
            lambda s, j=job: (
                replace(s, done_sent=_set_at(s.done_sent, j, True)),
                [("cancel", ("done", j))],
            ),
        )

    model.receive(
        "pool", "collect", "resp",
        lambda s, m: True,
        lambda s, m: (
            replace(s, collected=_set_at(
                s.collected, m[1], s.collected[m[1]] + 1
            )),
            [],
        ),
    )

    def on_cancel(s, m):
        job = m[1]
        marks = s.marks + ((job,) if job not in s.marks else ())
        if mutation == "prune_marks":
            marks = marks[-1:]  # the size-bounded prune (the bug)
        return (
            replace(
                s, marks=marks,
                ever_cancelled=s.ever_cancelled | {job},
            ),
            [],
        )

    def on_done(s, m):
        job = m[1]
        return (
            replace(
                s,
                marks=tuple(j for j in s.marks if j != job),
                ever_done=s.ever_done | {job},
            ),
            [],
        )

    def on_task(s, m):
        job = m[1]
        if job in s.marks:
            return replace(s), [("resp", ("cancelled", job))]
        violation = s.violation
        if job in s.ever_done:
            violation = (
                "task of job %d executed after its done confirmation"
                % job
            )
        elif job in s.ever_cancelled:
            violation = (
                "task of job %d executed after its cancel mark was "
                "pruned" % job
            )
        return replace(s, violation=violation), [("resp", ("ok", job))]

    model.receive("worker", "on_cancel", "cancel",
                  lambda s, m: m[0] == "cancel", on_cancel)
    model.receive("worker", "on_done", "cancel",
                  lambda s, m: m[0] == "done", on_done)
    model.receive("worker", "on_task", "req",
                  lambda s, m: True, on_task)

    model.invariant(
        "cancelled-task-never-executes",
        lambda states, channels: states["worker"].violation,
    )
    return model


# --- spec-cache LRU mirroring -----------------------------------------------


@dataclass(frozen=True)
class _SpecPool:
    mirror: tuple
    budget: int


@dataclass(frozen=True)
class _SpecWorker:
    cache: tuple
    violation: Optional[str] = None


def _lru_touch(order, key, limit):
    order = tuple(k for k in order if k != key) + (key,)
    return order[-limit:]


def spec_cache_model(mutation=None, limit=2, keys=("a", "b", "c"),
                     budget=4):
    """The pool's mirror of the worker's spec LRU.

    A dispatch ships the spec iff the mirror says the worker no longer
    caches it; the worker then decodes task messages against its own
    LRU.  The safety property: a task's spec key is always resident
    worker-side.  Mutation ``"desync"`` replants the PR 8 cache-desync
    bug — the mirror is an unordered grow-only set, so evictions are
    never replayed and dropped specs are never re-shipped.
    """
    if mutation not in (None, "desync"):
        _invalid_mutation("spec_cache", mutation)
    model = Model("spec_cache" + (":" + mutation if mutation else ""))
    model.machine("pool", _SpecPool(mirror=(), budget=budget))
    model.machine("worker", _SpecWorker(cache=()))
    model.channel("req", capacity=2 * budget)

    def dispatch(s, key):
        if key in s.mirror:
            mirror = (
                s.mirror if mutation == "desync"
                else _lru_touch(s.mirror, key, limit)
            )
            sends = [("req", ("task", key))]
        else:
            mirror = (
                tuple(sorted(set(s.mirror) | {key}))
                if mutation == "desync"  # membership only, no eviction
                else _lru_touch(s.mirror, key, limit)
            )
            sends = [("req", ("ship", key)), ("req", ("task", key))]
        return replace(s, mirror=mirror, budget=s.budget - 1), sends

    for key in keys:
        model.internal(
            "pool", "dispatch[%s]" % key,
            lambda s: s.budget > 0,
            lambda s, k=key: dispatch(s, k),
        )

    def on_ship(s, m):
        return replace(s, cache=_lru_touch(s.cache, m[1], limit)), []

    def on_task(s, m):
        key = m[1]
        if key not in s.cache:
            return (
                replace(s, violation=(
                    "task references spec %r evicted from the worker "
                    "cache (ship/evict desync)" % key
                )),
                [],
            )
        return replace(s, cache=_lru_touch(s.cache, key, limit)), []

    model.receive("worker", "on_ship", "req",
                  lambda s, m: m[0] == "ship", on_ship)
    model.receive("worker", "on_task", "req",
                  lambda s, m: m[0] == "task", on_task)

    model.invariant(
        "task-spec-always-resident",
        lambda states, channels: states["worker"].violation,
    )
    return model


# --- SPSC ring cursors ------------------------------------------------------


@dataclass(frozen=True)
class _Ring:
    read: int
    write: int
    segments: tuple  # outstanding (offset, length) in FIFO order
    budget: int
    violation: Optional[str] = None


def ring_model(mutation=None, capacity=4, sizes=(1, 2, 3), budget=4):
    """The shared-memory ring's cursor arithmetic.

    One machine carries both roles (the ring is SPSC; producer and
    consumer steps still interleave freely).  The producer replicates
    :meth:`~repro.dataflow.workers.channels.RingSegment.try_write` —
    one-slot-empty free computation, contiguous placement, tail-skip
    wrap, inline fallback when the payload does not fit — and the
    invariant is that a placed payload never overlaps bytes the
    consumer has not yet read.  Mutation ``"no_reserve"`` drops the
    one-slot-empty reserve (``free = capacity`` when the cursors are
    equal), the classic full/empty ambiguity.
    """
    if mutation not in (None, "no_reserve"):
        _invalid_mutation("ring", mutation)
    model = Model("ring" + (":" + mutation if mutation else ""))
    model.machine("ring", _Ring(read=0, write=0, segments=(), budget=budget))

    def overlap(offset, size, segments):
        for seg_offset, seg_length in segments:
            if offset < seg_offset + seg_length and seg_offset < (
                offset + size
            ):
                return (seg_offset, seg_length)
        return None

    def write(s, size):
        if mutation == "no_reserve" and s.read == s.write:
            free = capacity
        else:
            free = (s.read - s.write - 1) % capacity
        tail = capacity - s.write
        if size <= tail:
            if size > free:
                return replace(s, budget=s.budget - 1), []  # inline
            offset = s.write
            new_write = (s.write + size) % capacity
        else:
            if tail + size > free:
                return replace(s, budget=s.budget - 1), []  # inline
            offset = 0
            new_write = size
        violation = s.violation
        clobbered = overlap(offset, size, s.segments)
        if clobbered is not None:
            violation = (
                "write of %d byte(s) at offset %d overlaps unread "
                "segment %r" % (size, offset, clobbered)
            )
        return (
            replace(
                s, write=new_write, budget=s.budget - 1,
                segments=s.segments + ((offset, size),),
                violation=violation,
            ),
            [],
        )

    for size in sizes:
        model.internal(
            "ring", "write[%d]" % size,
            lambda s: s.budget > 0,
            lambda s, z=size: write(s, z),
        )

    model.internal(
        "ring", "read",
        lambda s: bool(s.segments),
        lambda s: (
            replace(
                s,
                read=(s.segments[0][0] + s.segments[0][1]) % capacity,
                segments=s.segments[1:],
            ),
            [],
        ),
    )

    model.invariant(
        "payloads-never-overlap-unread",
        lambda states, channels: states["ring"].violation,
    )
    return model


# --- resident-source eviction -----------------------------------------------


@dataclass(frozen=True)
class _ResidentPool:
    resident: tuple  # LRU order, every source one byte
    budget: int
    violation: Optional[str] = None


@dataclass(frozen=True)
class _ResidentWorker:
    resident: frozenset
    violation: Optional[str] = None


def resident_model(mutation=None, keys=("x", "y"), byte_budget=1,
                   batches=2):
    """Resident-source accounting under the per-worker byte budget.

    A batch touches or stores its sources (pinning them), then appends
    ``free`` messages for the LRU-evicted remainder *after* its tasks.
    Safety: a ``cached`` reference always finds the source resident,
    a batch never frees a source it itself references, and — once the
    pipe drains — the worker's resident set equals the pool's mirror.

    Mutations: ``"no_pin"`` evicts batch-referenced sources,
    ``"no_free_on_evict"`` forgets to tell the worker about an
    eviction, ``"unpinned_reorder"`` combines ``no_pin`` with frees
    sent *before* the batch's tasks (the ordering pinning makes safe).
    """
    if mutation not in (None, "no_pin", "no_free_on_evict",
                        "unpinned_reorder"):
        _invalid_mutation("resident", mutation)
    model = Model("resident" + (":" + mutation if mutation else ""))
    model.machine("pool", _ResidentPool(resident=(), budget=batches))
    model.machine("worker", _ResidentWorker(resident=frozenset()))
    model.channel("req", capacity=8)

    subsets = [(keys[0],), (keys[1],), tuple(keys)]
    skip_pins = mutation in ("no_pin", "unpinned_reorder")

    def batch(s, batch_keys):
        resident = list(s.resident)
        pinned = set()
        tasks = []
        for key in batch_keys:
            pinned.add(key)
            if key in resident:
                resident.remove(key)
                resident.append(key)  # move_to_end
                tasks.append(("req", ("cached", key)))
            else:
                resident.append(key)
                tasks.append(("req", ("store", key)))
        frees = []
        violation = s.violation
        for key in list(resident):
            if len(resident) <= byte_budget:
                break
            if key in pinned and not skip_pins:
                continue
            resident.remove(key)
            if key in pinned:
                violation = (
                    "batch frees source %r it references itself" % key
                )
            if mutation != "no_free_on_evict":
                frees.append(("req", ("free", key)))
        if mutation == "unpinned_reorder":
            sends = frees + tasks  # the ordering pinning protects
        else:
            sends = tasks + frees
        return (
            replace(s, resident=tuple(resident), budget=s.budget - 1,
                    violation=violation),
            sends,
        )

    for subset in subsets:
        model.internal(
            "pool", "batch[%s]" % "+".join(subset),
            lambda s: s.budget > 0,
            lambda s, b=subset: batch(s, b),
        )

    def on_store(s, m):
        return replace(s, resident=s.resident | {m[1]}), []

    def on_cached(s, m):
        if m[1] not in s.resident:
            return (
                replace(s, violation=(
                    "cached reference to source %r the worker no "
                    "longer holds" % m[1]
                )),
                [],
            )
        return s, []

    def on_free(s, m):
        return replace(s, resident=s.resident - {m[1]}), []

    model.receive("worker", "on_store", "req",
                  lambda s, m: m[0] == "store", on_store)
    model.receive("worker", "on_cached", "req",
                  lambda s, m: m[0] == "cached", on_cached)
    model.receive("worker", "on_free", "req",
                  lambda s, m: m[0] == "free", on_free)

    def conformance(states, channels):
        pool, worker = states["pool"], states["worker"]
        if pool.violation:
            return pool.violation
        if worker.violation:
            return worker.violation
        if not channels["req"]:  # quiescent: mirrors must agree
            if worker.resident != frozenset(pool.resident):
                return (
                    "quiescent mismatch: pool mirror %r vs worker "
                    "resident %r"
                    % (tuple(pool.resident), tuple(sorted(
                        worker.resident
                    )))
                )
        return None

    model.invariant("resident-mirror-conformance", conformance)
    return model


# --- crash-notice scoping ---------------------------------------------------


@dataclass(frozen=True)
class _CrashPool:
    dispatched: tuple
    outcome: tuple  # per job: "running" | "done" | "failed"


@dataclass(frozen=True)
class _CrashWorker:
    alive: bool = True
    crash_sent: bool = False


def crash_scope_model(mutation=None):
    """Crash notices fail exactly the jobs placed on the dead worker.

    Two jobs, each one task, each placed on its own worker; worker B
    may die at any point.  The invariant: job 0 — which never placed a
    task on B — must never be failed.  Mutation
    ``"shared_notice_bug"`` replants the PR 8 crash mis-scoping: the
    collect loop failed *every* active job on any crash notice.
    """
    if mutation not in (None, "shared_notice_bug"):
        _invalid_mutation("crash_scope", mutation)
    model = Model(
        "crash_scope" + (":" + mutation if mutation else "")
    )
    used = ("A", "B")  # job index → the worker its task is placed on
    model.machine("pool", _CrashPool(
        dispatched=(False, False), outcome=("running", "running"),
    ))
    model.machine("workerA", _CrashWorker())
    model.machine("workerB", _CrashWorker())
    model.channel("reqA", capacity=2)
    model.channel("reqB", capacity=2)
    model.channel("resp", capacity=4)

    for job, worker in enumerate(used):
        model.internal(
            "pool", "dispatch[%d]" % job,
            lambda s, j=job: not s.dispatched[j],
            lambda s, j=job, w=worker: (
                replace(s, dispatched=_set_at(s.dispatched, j, True)),
                [("req%s" % w, ("task", j))],
            ),
        )

    def on_ok(s, m):
        job = m[1]
        outcome = (
            _set_at(s.outcome, job, "done")
            if s.outcome[job] == "running" else s.outcome
        )
        return replace(s, outcome=outcome), []

    def on_crash(s, m):
        dead = m[1]
        outcome = list(s.outcome)
        for job, worker in enumerate(used):
            if s.outcome[job] != "running":
                continue
            # the load-bearing scoping: only jobs that placed tasks on
            # the dead worker lose anything
            if mutation == "shared_notice_bug" or worker == dead:
                outcome[job] = "failed"
        return replace(s, outcome=tuple(outcome)), []

    model.receive("pool", "collect_ok", "resp",
                  lambda s, m: m[0] == "ok", on_ok)
    model.receive("pool", "collect_crash", "resp",
                  lambda s, m: m[0] == "crash", on_crash)

    for name in ("A", "B"):
        def on_task(s, m, w=name):
            if not s.alive:
                return s, []  # a dead worker's queue drains into EOF
            return s, [("resp", ("ok", m[1]))]

        model.receive("worker%s" % name, "on_task", "req%s" % name,
                      lambda s, m: True, on_task)

    model.internal(
        "workerB", "crash",
        lambda s: s.alive and not s.crash_sent,
        lambda s: (
            replace(s, alive=False, crash_sent=True),
            [("resp", ("crash", "B"))],
        ),
    )

    model.invariant(
        "crash-failures-scoped-to-used-workers",
        lambda states, channels: (
            "job 0 failed although no task of it was placed on the "
            "dead worker"
            if states["pool"].outcome[0] == "failed" else None
        ),
    )
    return model


# --- registry ---------------------------------------------------------------

#: model name → builder accepting ``mutation=None``
MODELS = {
    "cancel_done": cancel_done_model,
    "spec_cache": spec_cache_model,
    "ring": ring_model,
    "resident": resident_model,
    "crash_scope": crash_scope_model,
}

#: model name → the mutations its builder accepts; every one must be
#: *caught* by the checker (the planted-bug acceptance tests assert it)
MUTATIONS = {
    "cancel_done": ("early_done", "prune_marks"),
    "spec_cache": ("desync",),
    "ring": ("no_reserve",),
    "resident": ("no_pin", "no_free_on_evict", "unpinned_reorder"),
    "crash_scope": ("shared_notice_bug",),
}


def check_all(max_states=100000):
    """Check every shipped (unmutated) model; returns name → result."""
    return {
        name: check(builder(), max_states=max_states)
        for name, builder in MODELS.items()
    }

"""Structured diagnostics for the static query analyzer.

Every finding the linter (or verifier) produces is a :class:`Diagnostic`
with a **stable code** from the registry below, a severity, an optional
source span and a human-readable message.  Codes are stable API: tools
may filter or suppress on them, so existing codes never change meaning
(new ones are appended).

Code ranges:

* ``E1xx`` — semantic errors: the query can never be executed correctly.
* ``E2xx`` — satisfiability errors: the query executes but is provably
  empty from its predicates alone.
* ``W3xx`` — statistics warnings: empty or explosive against *this* data
  graph (requires :class:`~repro.engine.statistics.GraphStatistics`).
* ``W4xx`` — plan-shape warnings: legal but expensive or surprising.
* ``S2xx`` — sanitizer findings: runtime invariant violations caught by
  instrumented (sanitized) execution, the cross-planner differential
  checker and the cardinality-estimate audit.  Unlike the static ranges
  these carry no source span — they point at operators, not query text.
* ``C3xx`` — concurrency findings from the lock-discipline linter
  (``repro racecheck``, :mod:`repro.analysis.concurrency`): these point
  at *our own* Python source (``file:line`` in the message, no query
  span) — shared fields accessed outside their declared ``# guarded-by``
  lock, statically inferable lock-order inversions, blocking calls made
  while holding a lock, and locks created per call.
* ``S3xx`` — layout-flow findings from the *static* embedding-layout
  verifier (``repro flowcheck``, :mod:`repro.analysis.flow`): abstract
  interpretation over a compiled physical plan proves — or refutes —
  the §3.3 byte-layout contracts the ``S2xx`` sanitizer checks
  per-embedding at runtime.  Like ``S2xx`` these carry no source span;
  they point at plan operators.
* ``P4xx`` — UDF shippability findings (:mod:`repro.analysis.udfcheck`):
  closure introspection plus AST analysis over every callable installed
  into dataflow operators and fused chain templates, classifying it as
  process-shippable or not.  These point at Python callables
  (``module.qualname`` in the message) — the gate a chain must pass
  before multi-process execution may ship it to a worker.
* ``W5xx`` — wire-protocol findings (``repro wirecheck``,
  :mod:`repro.analysis.protocol` / :mod:`repro.analysis.model`): the
  parent↔worker message contract of the multi-process runtime, proven
  two ways.  ``W501``–``W505`` and ``W509`` come from the static
  wire-schema drift check (AST extraction of every message constructor,
  handler arm and record-batch format constant in
  :mod:`repro.dataflow.workers`, diffed against the declared
  :data:`~repro.dataflow.workers.messages.PIPES` /
  :data:`~repro.dataflow.workers.messages.FRAMES` vocabulary); ``W506``–
  ``W508`` come from the explicit-state model checker exhaustively
  exploring the interleavings of the cancel/done, spec-cache LRU,
  SPSC-ring and resident-eviction protocols.  These point at Python
  source or at a counterexample message trace, never at query text.
* ``S4xx`` — liveness and cost-bound findings (``repro livecheck``,
  :mod:`repro.analysis.liveness` / :mod:`repro.analysis.costbound`):
  the backward dual of the ``S3xx`` flow pass.  Demand propagates from
  the plan root down to the leaves, flagging columns, property bytes
  and path contents an operator carries but no consumer ever reads
  (dead bytes are legal — warnings), plus static cost-bound findings:
  a query whose proven output-cardinality bound exceeds the admission
  threshold (error) and a bound-soundness violation where an observed
  cardinality exceeds its proven upper bound (error — the bound
  derivation itself is wrong).
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cypher.errors import CypherSemanticError
from repro.cypher.span import Span


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __lt__(self, other):
        order = {"error": 0, "warning": 1, "info": 2}
        return order[self.value] < order[other.value]


#: code -> (severity, slug, summary). The authoritative registry; see
#: docs/analysis.md for examples of each.
CODES = {
    "E101": (Severity.ERROR, "unbound-variable",
             "WHERE references a variable not bound in MATCH"),
    "E102": (Severity.ERROR, "return-unbound-variable",
             "RETURN/ORDER BY references a variable not bound in MATCH"),
    "E103": (Severity.ERROR, "variable-kind-conflict",
             "one variable used for both a vertex and an edge"),
    "E104": (Severity.ERROR, "edge-variable-reused",
             "an edge variable bound by more than one relationship"),
    "E105": (Severity.ERROR, "type-mismatch",
             "comparison whose operand types can never be compatible"),
    "E201": (Severity.ERROR, "unsatisfiable-predicate",
             "conjunction of predicates no value can satisfy"),
    "E202": (Severity.ERROR, "conflicting-labels",
             "an element required to carry two different labels at once"),
    "W301": (Severity.WARNING, "unknown-vertex-label",
             "vertex label has zero instances in the graph statistics"),
    "W302": (Severity.WARNING, "unknown-edge-type",
             "edge type has zero instances in the graph statistics"),
    "W401": (Severity.WARNING, "cartesian-product",
             "disconnected pattern components multiply into a cross product"),
    "W402": (Severity.WARNING, "unbounded-path",
             "variable-length path without an upper bound is capped"),
    "W403": (Severity.WARNING, "shadowed-variable",
             "a RETURN alias shadows a different pattern variable"),
    "W404": (Severity.WARNING, "unused-variable",
             "a named pattern variable is never referenced"),
    "S201": (Severity.ERROR, "embedding-entry-width",
             "id_data length is not a multiple of the 9-byte entry width"),
    "S202": (Severity.ERROR, "embedding-column-count",
             "embedding column count disagrees with the operator metadata"),
    "S203": (Severity.ERROR, "embedding-bad-flag",
             "entry flag byte is neither ID nor PATH, or contradicts the "
             "metadata entry kind"),
    "S204": (Severity.ERROR, "embedding-dangling-path",
             "PATH entry offset does not land on a complete path_data record"),
    "S205": (Severity.ERROR, "embedding-path-bounds",
             "path element count is malformed or violates the declared "
             "*lower..upper bounds"),
    "S206": (Severity.ERROR, "embedding-prop-walk",
             "prop_data length fields do not walk exactly to the buffer end "
             "or a value fails to deserialize"),
    "S207": (Severity.ERROR, "embedding-prop-count",
             "deserialized property count disagrees with the operator "
             "metadata"),
    "S208": (Severity.ERROR, "embedding-morphism",
             "embedding violates the configured vertex/edge morphism "
             "strategy"),
    "S209": (Severity.ERROR, "operator-contract",
             "operator broke its output contract (join keys disagree "
             "byte-for-byte, projection altered a kept value)"),
    "S210": (Severity.ERROR, "planner-disagreement",
             "two planners returned different result multisets for one "
             "query"),
    "S211": (Severity.WARNING, "estimate-q-error",
             "cardinality estimate off from the actual count by more than "
             "the configured factor"),
    "C301": (Severity.ERROR, "unguarded-field-access",
             "shared field read or written without holding its declared "
             "guarded-by lock"),
    "C302": (Severity.ERROR, "lock-order-inversion",
             "two locks acquired in contradictory orders — a potential "
             "deadlock"),
    "C303": (Severity.ERROR, "blocking-call-under-lock",
             "blocking call (sleep, queue/future wait, I/O) made while "
             "holding a lock"),
    "C304": (Severity.ERROR, "per-call-lock",
             "lock created and acquired inside one call — it guards "
             "nothing"),
    "C305": (Severity.WARNING, "unknown-guard",
             "guarded-by annotation names a lock attribute the class does "
             "not define"),
    "C306": (Severity.ERROR, "blocking-ipc-under-lock",
             "pipe send/recv or ring wait performed while holding a "
             "pool-hierarchy lock"),
    "S301": (Severity.ERROR, "layout-width-mismatch",
             "derived column count (merge width arithmetic) disagrees with "
             "the operator's declared metadata"),
    "S302": (Severity.ERROR, "layout-kind-mismatch",
             "derived entry kind or column order disagrees with the "
             "operator's declared metadata"),
    "S303": (Severity.ERROR, "layout-path-bounds",
             "path column with malformed or missing *lower..upper hop "
             "bounds"),
    "S304": (Severity.ERROR, "layout-property-mismatch",
             "derived property column sequence disagrees with the "
             "operator's declared property mapping"),
    "S305": (Severity.ERROR, "layout-morphism-unproven",
             "configured morphism strategy is not statically guaranteed at "
             "the plan root"),
    "S306": (Severity.ERROR, "layout-join-keys",
             "join key columns are statically incompatible (missing "
             "variable, kind conflict, path column, or unprojected key "
             "property)"),
    "S307": (Severity.ERROR, "layout-projection-provenance",
             "projection keeps a property its input does not provide"),
    "S308": (Severity.WARNING, "layout-unknown-operator",
             "operator without a layout transfer rule — the plan may be "
             "legal but cannot be statically proven"),
    "P401": (Severity.ERROR, "captured-synchronization",
             "callable captures a lock, thread, thread-local or other "
             "synchronization primitive that cannot cross processes"),
    "P402": (Severity.ERROR, "captured-handle",
             "callable captures an open file, socket or generator bound to "
             "this process"),
    "P403": (Severity.ERROR, "shared-mutable-capture",
             "callable mutates captured state — workers would each mutate "
             "their own copy, diverging from single-process execution"),
    "P404": (Severity.ERROR, "nondeterministic-call",
             "callable invokes a nondeterministic or process-dependent "
             "function (time, random, uuid, thread identity)"),
    "P405": (Severity.ERROR, "unpicklable-cell",
             "callable captures a value that does not pickle — it cannot "
             "be shipped to a worker process"),
    "S401": (Severity.WARNING, "dead-column",
             "an id column is carried through the dataflow but never read "
             "by any downstream consumer"),
    "S402": (Severity.WARNING, "dead-property-bytes",
             "a property record is loaded into embeddings but never read "
             "downstream — dead prop_data bytes in every embedding"),
    "S403": (Severity.WARNING, "dead-path-hops",
             "path contents (the hop sequence) are carried but never read "
             "— only the column slot is required downstream"),
    "S404": (Severity.WARNING, "liveness-unknown-operator",
             "operator without a liveness transfer rule — everything below "
             "it is conservatively assumed live"),
    "S405": (Severity.ERROR, "cost-bound-exceeded",
             "a statically proven operator cost bound exceeds the "
             "configured admission threshold"),
    "S406": (Severity.ERROR, "bound-soundness-violation",
             "an observed operator cardinality exceeds its statically "
             "proven upper bound — the bound derivation is unsound"),
    "W501": (Severity.ERROR, "wire-tag-unhandled",
             "a message tag is sent on a pipe whose receiving side has "
             "no handler arm for it — the message would be silently "
             "dropped or crash the receiver"),
    "W502": (Severity.WARNING, "wire-tag-never-sent",
             "a handler arm matches a message tag no production sender "
             "ever constructs — dead protocol surface that hides drift"),
    "W503": (Severity.ERROR, "wire-arity-mismatch",
             "a send site or handler arm disagrees with the declared "
             "field count of its message tag"),
    "W504": (Severity.ERROR, "wire-unshippable-payload",
             "a message payload field fails the P4xx picklability "
             "analysis — it cannot cross the process boundary"),
    "W505": (Severity.ERROR, "wire-constant-drift",
             "a wire-contract constant is defined locally on one side "
             "of the pipe instead of imported from the shared module"),
    "W506": (Severity.ERROR, "protocol-deadlock",
             "the model checker reached a non-final state where no "
             "transition is enabled — the protocol can wedge"),
    "W507": (Severity.ERROR, "protocol-lost-message",
             "a reachable interleaving drops a message (bounded channel "
             "overflow or discard on an unmatched tag)"),
    "W508": (Severity.ERROR, "protocol-invariant-violation",
             "a reachable protocol state violates a declared safety "
             "invariant (cache desync, stale cancel mark, ring overlap)"),
    "W509": (Severity.ERROR, "wire-frame-drift",
             "a record-batch FORMAT_* constant disagrees with the "
             "declared frame table (messages.FRAMES) — undeclared, "
             "missing, or with a drifted tag byte"),
}

#: Codes the runner refuses to execute: the compiler would reject these
#: queries anyway.  Satisfiability errors (E1xx binding errors aside) stay
#: non-blocking — an unsatisfiable query is legal Cypher with an empty
#: result, and refusing it would change runtime behaviour.
BLOCKING_CODES = frozenset({"E101", "E102", "E103", "E104"})


@dataclass(frozen=True)
class Diagnostic:
    """One linter/verifier finding, renderable and machine-filterable."""

    code: str
    message: str
    severity: Severity = Severity.WARNING
    variable: Optional[str] = None
    span: Optional[Span] = None

    @classmethod
    def of(cls, code, message, variable=None, span=None):
        """Build a diagnostic, deriving the severity from the registry."""
        severity, _slug, _summary = CODES[code]
        return cls(code=code, message=message, severity=severity,
                   variable=variable, span=span)

    @property
    def slug(self):
        return CODES[self.code][1]

    @property
    def is_error(self):
        return self.severity is Severity.ERROR

    @property
    def is_blocking(self):
        """True when the runner must refuse to execute the query."""
        return self.code in BLOCKING_CODES

    def format(self, query_text=None):
        """``error[E101] unbound-variable: ... (line 1, column 7)``.

        With ``query_text`` the location moves into a rustc-style excerpt
        (line-number gutter + caret underline) below the message.
        """
        show_excerpt = query_text is not None and self.span is not None
        location = (
            " (%s)" % self.span
            if self.span is not None and not show_excerpt
            else ""
        )
        line = "%s[%s] %s: %s%s" % (
            self.severity.value, self.code, self.slug, self.message, location
        )
        if show_excerpt:
            line += "\n" + self.span.excerpt(query_text)
        return line

    def __str__(self):
        return self.format()


class QueryLintError(CypherSemanticError):
    """Raised by the runner when linting finds error-severity diagnostics.

    Subclasses :class:`~repro.cypher.errors.CypherSemanticError` so callers
    that handle semantic errors keep working when the linter reports the
    problem first; ``diagnostics`` carries the structured findings.
    """

    def __init__(self, diagnostics, query_text=None):
        diagnostics = list(diagnostics)
        lines = ["query failed lint with %d error(s):" % sum(
            1 for d in diagnostics if d.is_error
        )]
        lines += ["  " + d.format(query_text) for d in diagnostics]
        super().__init__("\n".join(lines))
        self.diagnostics = diagnostics


def sort_diagnostics(diagnostics):
    """Errors first, then by source position, then by code."""
    return sorted(
        diagnostics,
        key=lambda d: (
            d.severity,
            d.span.offset if d.span is not None else 1 << 30,
            d.code,
        ),
    )

"""Static wire-schema extraction and drift check: ``repro wirecheck``.

Layer 1 of the wire-protocol verifier (W501–W505; Layer 2, the
explicit-state model checker, lives in :mod:`repro.analysis.model` /
:mod:`repro.analysis.wire_models`).  The multi-process runtime's parent
(:mod:`repro.dataflow.workers.pool`) and worker
(:mod:`repro.dataflow.workers.runtime`) exchange string-tagged tuples
over three pipes; the declared vocabulary — tag constants, per-tag
field lists, sender roles — is
:data:`repro.dataflow.workers.messages.PIPES`.  This pass parses both
sides with :mod:`ast`, extracts every message **construct site** (a
tuple literal headed by a vocabulary constant) and every **handler
arm** (a comparison of a message's tag slot against a vocabulary
constant), and diffs the two sides against the declaration:

* **W501** — a tag is constructed on its sending side but the receiving
  side has no handler arm: the message would be silently dropped (or
  crash the receiver).
* **W502** — a handler arm matches a tag no production sender ever
  constructs: dead protocol surface that hides drift (``test_only``
  tags such as the ``crash`` hook are exempt).
* **W503** — a construct site or handler arm disagrees with the
  declared shape: wrong tuple arity, or a message constructed on the
  side declared as its *receiver*.
* **W504** — a construct-site payload field that the ``P4xx``
  shippability machinery would reject (lambdas, generators, locally
  created locks/files/threads): it cannot cross the pickle boundary.
* **W505** — a wire-contract constant (:data:`SHARED_CONSTANTS`, e.g.
  ``SPEC_CACHE_LIMIT``) read on both sides but *defined* locally in a
  role module instead of imported from the shared defining module —
  the exact both-sides-must-agree drift the spec-cache LRU mirror
  depends on.
* **W509** — the record-batch format constants (``FORMAT_*`` in the
  shipping module) disagree with the declared frame table
  (:data:`~repro.dataflow.workers.messages.FRAMES`): a declared frame
  without a defining constant, a constant whose tag byte drifted, or a
  ``FORMAT_*`` constant no declaration covers.  The ``fmt`` field of
  every blob-bearing message carries one of these tags, so an
  undeclared or drifted format is payload the other side cannot parse.

The extraction is sound by convention, not by solving Python: wire
messages are always built and matched through the imported vocabulary
constants (see the :mod:`~repro.dataflow.workers.messages` module
docstring), so a tuple headed by a raw string literal is internal
bookkeeping and intentionally invisible to this pass.
"""

import ast
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "ConstructSite",
    "HandlerArm",
    "WireReport",
    "wirecheck_paths",
    "wirecheck_sources",
    "DEFAULT_ROLE_PATHS",
]

_WORKERS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "dataflow", "workers",
)

#: the shipped tree's role assignment: which modules speak as the
#: parent, which as the worker, and which only *define* shared wire
#: constants (legitimate definition sites for W505)
DEFAULT_ROLE_PATHS = {
    "parent": (os.path.join(_WORKERS_DIR, "pool.py"),),
    "worker": (os.path.join(_WORKERS_DIR, "runtime.py"),),
    "shared": (
        os.path.join(_WORKERS_DIR, "messages.py"),
        os.path.join(_WORKERS_DIR, "channels.py"),
        os.path.join(_WORKERS_DIR, "shipping.py"),
    ),
}

#: constructors whose result can never cross the pickle boundary —
#: the syntactic face of the P4xx ``captured-synchronization`` /
#: ``captured-handle`` classes (udfcheck analyzes live callables; a
#: message field is plain data, so the constructor call is the signal)
_UNSHIPPABLE_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread", "ThreadPoolExecutor", "named_lock",
    "named_rlock", "open",
})


@dataclass(frozen=True)
class ConstructSite:
    """One tuple literal headed by a vocabulary tag constant."""

    tag: str
    pipe: str
    role: str
    path: str
    line: int
    arity: int
    fields: tuple  # AST nodes of the payload slots, for W504


@dataclass(frozen=True)
class HandlerArm:
    """One comparison of a message's tag slot against a tag constant."""

    tag: str
    pipe: str
    role: str
    path: str
    line: int
    #: exact tuple arity when the arm unpacks the message, else None
    arity: Optional[int]
    #: 1 + highest subscript index observed — a lower bound on arity
    min_arity: int


@dataclass
class WireReport:
    """Extraction results plus the drift diagnostics they imply."""

    diagnostics: list = field(default_factory=list)
    constructs: list = field(default_factory=list)
    handlers: list = field(default_factory=list)

    @property
    def errors(self):
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def warnings(self):
        return sum(1 for d in self.diagnostics if not d.is_error)

    @property
    def clean(self):
        return not self.diagnostics

    def format_summary(self):
        return (
            "wirecheck: %d construct site(s), %d handler arm(s), "
            "%d error(s), %d warning(s)"
            % (len(self.constructs), len(self.handlers), self.errors,
               self.warnings)
        )

    def format_vocabulary(self):
        """Per-pipe tag coverage table (``--verbose`` output)."""
        from repro.dataflow.workers.messages import PIPES

        sent = {}
        handled = {}
        for site in self.constructs:
            sent.setdefault(site.tag, []).append(site)
        for arm in self.handlers:
            handled.setdefault(arm.tag, []).append(arm)
        lines = []
        for pipe in PIPES:
            lines.append("%s pipe (%s -> %s):"
                         % (pipe.name, pipe.sender, pipe.receiver))
            for tag in pipe.fields:
                note = ""
                if tag in pipe.test_only:
                    note = " [test-only]"
                lines.append(
                    "  %-10s arity %d  sends %d  arms %d%s"
                    % (tag, pipe.arity(tag), len(sent.get(tag, ())),
                       len(handled.get(tag, ())), note)
                )
        return "\n".join(lines)


# --- per-file extraction ----------------------------------------------------


def _is_vocab_module(module, level):
    """True for ``repro.dataflow.workers.messages`` under any spelling."""
    if module is None:
        return False
    return module == "messages" or module.endswith(".messages") or (
        level > 0 and module == "messages"
    )


class _FunctionScope:
    """Lexical facts about one function body the arm analysis needs."""

    def __init__(self):
        #: kind variable → the message variable it was sliced from
        self.kind_from_slice = {}
        #: kind variable → exact tuple arity of a ``k, ... = conn.recv()``
        self.kind_from_recv = {}
        #: local name → syntactically unshippable value (lambda, lock…)
        self.unshippable = {}


class _FileExtractor(ast.NodeVisitor):
    """Extract construct sites, handler arms and constant definitions."""

    def __init__(self, path, role, tag_pipe, vocab_names, shared_constants):
        self.path = path
        self.role = role
        self.tag_pipe = tag_pipe  # tag value → PipeSpec
        self.vocab_names = vocab_names  # constant name → tag value
        self.shared_constants = shared_constants
        self.constructs = []
        self.handlers = []
        #: shared-constant name → line of a module-level local definition
        self.constant_defs = {}
        #: ``FORMAT_*`` name → (tag bytes, line) of a module-level
        #: bytes-literal definition (the W509 frame-table check)
        self.format_defs = {}
        #: shared-constant names read anywhere in this file
        self.constant_reads = set()
        self._aliases = {}  # local name → vocabulary constant name
        self._module_aliases = set()  # local names bound to the module
        self._scopes = []
        self.closed_scopes = []  # every function scope, for W504 lookups
        self._arm_lines = set()

    # -- imports and module level -------------------------------------------

    def visit_ImportFrom(self, node):
        if _is_vocab_module(node.module, node.level):
            for alias in node.names:
                if alias.name in self.vocab_names:
                    self._aliases[alias.asname or alias.name] = alias.name
        else:
            for alias in node.names:
                if alias.name == "messages":
                    self._module_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Import(self, node):
        for alias in node.names:
            if alias.name.endswith(".messages"):
                self._module_aliases.add(
                    alias.asname or alias.name.split(".")[0]
                )
        self.generic_visit(node)

    def visit_Module(self, node):
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id in self.shared_constants:
                        self.constant_defs[target.id] = statement.lineno
                    if target.id.startswith("FORMAT_") and isinstance(
                        statement.value, ast.Constant
                    ) and isinstance(statement.value.value, bytes):
                        self.format_defs[target.id] = (
                            statement.value.value,
                            statement.lineno,
                        )
        self.generic_visit(node)

    def visit_Name(self, node):
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.shared_constants
        ):
            self.constant_reads.add(node.id)
        self.generic_visit(node)

    # -- tag resolution ------------------------------------------------------

    def _tag_of(self, node):
        """The tag string a reference resolves to, or None."""
        if isinstance(node, ast.Name):
            constant = self._aliases.get(node.id)
            if constant is not None:
                return self.vocab_names[constant]
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if (
                node.value.id in self._module_aliases
                and node.attr in self.vocab_names
            ):
                return self.vocab_names[node.attr]
        return None

    # -- function scopes -----------------------------------------------------

    def _enter_function(self, node):
        scope = _FunctionScope()
        for statement in ast.walk(node):
            if not isinstance(statement, ast.Assign):
                continue
            if len(statement.targets) != 1:
                continue
            target = statement.targets[0]
            value = statement.value
            if isinstance(target, ast.Name):
                # kind = message[0]
                if (
                    isinstance(value, ast.Subscript)
                    and isinstance(value.value, ast.Name)
                    and isinstance(value.slice, ast.Constant)
                    and value.slice.value == 0
                ):
                    scope.kind_from_slice[target.id] = value.value.id
                elif self._unshippable_value(value) is not None:
                    scope.unshippable[target.id] = (
                        self._unshippable_value(value)
                    )
            elif isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                # kind, ... = conn.recv()
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "recv"
                    and target.elts
                ):
                    scope.kind_from_recv[target.elts[0].id] = len(
                        target.elts
                    )
        self._scopes.append(scope)

    def visit_FunctionDef(self, node):
        self._enter_function(node)
        self.generic_visit(node)
        self.closed_scopes.append(self._scopes.pop())

    visit_AsyncFunctionDef = visit_FunctionDef

    def _scope(self):
        return self._scopes[-1] if self._scopes else _FunctionScope()

    # -- construct sites -----------------------------------------------------

    @staticmethod
    def _unshippable_value(node):
        """A short reason when ``node`` can never pickle, else None."""
        if isinstance(node, ast.Lambda):
            return "a lambda (P401-class: ships by value, never by ref)"
        if isinstance(node, ast.GeneratorExp):
            return "a generator expression (P402-class process handle)"
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if name in _UNSHIPPABLE_CONSTRUCTORS:
                return (
                    "a %s() (P401/P402-class synchronization or process "
                    "handle)" % name
                )
        return None

    def visit_Tuple(self, node):
        if node.elts:
            tag = self._tag_of(node.elts[0])
            if tag is not None and tag in self.tag_pipe:
                self.constructs.append(ConstructSite(
                    tag=tag,
                    pipe=self.tag_pipe[tag].name,
                    role=self.role,
                    path=self.path,
                    line=node.lineno,
                    arity=len(node.elts),
                    fields=tuple(node.elts[1:]),
                ))
        self.generic_visit(node)

    # -- handler arms --------------------------------------------------------

    def _match_arm(self, compare):
        """``(tag, kind_var)`` when ``compare`` matches a tag slot."""
        if len(compare.ops) != 1 or not isinstance(
            compare.ops[0], (ast.Eq, ast.NotEq)
        ):
            return None
        left, right = compare.left, compare.comparators[0]
        for kvar, tagref in ((left, right), (right, left)):
            tag = self._tag_of(tagref)
            if tag is None or tag not in self.tag_pipe:
                continue
            if not isinstance(kvar, ast.Name):
                continue
            scope = self._scope()
            if (
                kvar.id in scope.kind_from_slice
                or kvar.id in scope.kind_from_recv
            ):
                return tag, kvar.id
        return None

    def _record_arm(self, tag, kind_var, line, body):
        scope = self._scope()
        arity = scope.kind_from_recv.get(kind_var)
        min_arity = 1
        if arity is None and body is not None:
            message_var = scope.kind_from_slice[kind_var]
            for statement in body:
                for node in ast.walk(statement):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Tuple)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == message_var
                    ):
                        arity = len(node.targets[0].elts)
                    elif (
                        isinstance(node, ast.Subscript)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == message_var
                        and isinstance(node.slice, ast.Constant)
                        and isinstance(node.slice.value, int)
                    ):
                        min_arity = max(min_arity, node.slice.value + 1)
        self.handlers.append(HandlerArm(
            tag=tag,
            pipe=self.tag_pipe[tag].name,
            role=self.role,
            path=self.path,
            line=line,
            arity=arity,
            min_arity=min_arity,
        ))

    def visit_If(self, node):
        matched = (
            self._match_arm(node.test)
            if isinstance(node.test, ast.Compare)
            else None
        )
        if matched is not None:
            self._arm_lines.add(node.test.lineno)
            self._record_arm(matched[0], matched[1], node.test.lineno,
                             node.body)
        self.generic_visit(node)

    def visit_Compare(self, node):
        # arms outside an If test (e.g. ``return kind != SHUTDOWN``)
        if node.lineno not in self._arm_lines:
            matched = self._match_arm(node)
            if matched is not None:
                self._arm_lines.add(node.lineno)
                self._record_arm(matched[0], matched[1], node.lineno,
                                 None)
        self.generic_visit(node)


# --- the drift check --------------------------------------------------------


def _where(path, line):
    return "%s:%d" % (os.path.basename(path), line)


def _check_drift(extractors, pipes, shared_constants, frames=()):
    report = WireReport()
    for extractor in extractors:
        report.constructs.extend(extractor.constructs)
        report.handlers.extend(extractor.handlers)

    tag_pipe = {}
    for pipe in pipes:
        for tag in pipe.fields:
            tag_pipe[tag] = pipe

    sends = {}     # tag → sender-role construct sites
    arms = {}      # tag → receiver-role handler arms
    diagnostics = report.diagnostics
    for site in report.constructs:
        pipe = tag_pipe[site.tag]
        if site.role == pipe.sender:
            sends.setdefault(site.tag, []).append(site)
        elif site.role == pipe.receiver:
            diagnostics.append(Diagnostic.of(
                "W503",
                "%s: message %r constructed on the %s side, but the %s "
                "pipe declares %s as its sender"
                % (_where(site.path, site.line), site.tag, site.role,
                   pipe.name, pipe.sender),
            ))
    for arm in report.handlers:
        pipe = tag_pipe[arm.tag]
        if arm.role == pipe.receiver:
            arms.setdefault(arm.tag, []).append(arm)
        elif arm.role == pipe.sender and pipe.sender != pipe.receiver:
            # a sender matching its own outgoing tag is internal routing
            # (e.g. builders switching on task kind) — not a wire arm
            pass

    analyzed_roles = {extractor.role for extractor in extractors}
    for tag, pipe in tag_pipe.items():
        tag_sends = sends.get(tag, ())
        tag_arms = arms.get(tag, ())
        if tag_sends and not tag_arms and pipe.receiver in analyzed_roles:
            site = tag_sends[0]
            diagnostics.append(Diagnostic.of(
                "W501",
                "%s: %r is sent on the %s pipe but the %s side has no "
                "handler arm for it"
                % (_where(site.path, site.line), tag, pipe.name,
                   pipe.receiver),
            ))
        if (
            tag_arms and not tag_sends
            and tag not in pipe.test_only
            and pipe.sender in analyzed_roles
        ):
            arm = tag_arms[0]
            diagnostics.append(Diagnostic.of(
                "W502",
                "%s: %r is handled on the %s side but no %s-side send "
                "site constructs it"
                % (_where(arm.path, arm.line), tag, pipe.receiver,
                   pipe.sender),
            ))

    for site in sends.values():
        for construct in site:
            pipe = tag_pipe[construct.tag]
            declared = pipe.arity(construct.tag)
            if construct.arity != declared:
                diagnostics.append(Diagnostic.of(
                    "W503",
                    "%s: %r constructed with %d element(s), the %s pipe "
                    "declares %d (%s)"
                    % (_where(construct.path, construct.line),
                       construct.tag, construct.arity, pipe.name,
                       declared,
                       ", ".join(("tag",) + pipe.fields[construct.tag])),
                ))
            for index, expr in enumerate(construct.fields):
                reason = _FileExtractor._unshippable_value(expr)
                if reason is None and isinstance(expr, ast.Name):
                    reason = _field_name_unshippable(
                        extractors, construct, expr.id
                    )
                if reason is not None:
                    field_name = (
                        pipe.fields[construct.tag][index]
                        if index < len(pipe.fields[construct.tag])
                        else "#%d" % (index + 1)
                    )
                    diagnostics.append(Diagnostic.of(
                        "W504",
                        "%s: %r field %r is %s — it cannot cross the "
                        "process boundary"
                        % (_where(construct.path, construct.line),
                           construct.tag, field_name, reason),
                    ))
    for tag_arms in arms.values():
        for arm in tag_arms:
            pipe = tag_pipe[arm.tag]
            declared = pipe.arity(arm.tag)
            if arm.arity is not None and arm.arity != declared:
                diagnostics.append(Diagnostic.of(
                    "W503",
                    "%s: handler arm for %r unpacks %d element(s), the "
                    "%s pipe declares %d (%s)"
                    % (_where(arm.path, arm.line), arm.tag, arm.arity,
                       pipe.name, declared,
                       ", ".join(("tag",) + pipe.fields[arm.tag])),
                ))
            elif arm.arity is None and arm.min_arity > declared:
                diagnostics.append(Diagnostic.of(
                    "W503",
                    "%s: handler arm for %r indexes element %d, the %s "
                    "pipe declares only %d element(s)"
                    % (_where(arm.path, arm.line), arm.tag,
                       arm.min_arity - 1, pipe.name, declared),
                ))

    # W505: a role module locally defining a shared wire constant that
    # the other side of the pipe also reads
    reads_by_role = {}
    for extractor in extractors:
        reads_by_role.setdefault(extractor.role, set()).update(
            extractor.constant_reads
        )
    for extractor in extractors:
        if extractor.role == "shared":
            continue
        other = "worker" if extractor.role == "parent" else "parent"
        for name, line in sorted(extractor.constant_defs.items()):
            if name in reads_by_role.get(other, ()):  # both sides read it
                diagnostics.append(Diagnostic.of(
                    "W505",
                    "%s: wire-contract constant %s is defined locally on "
                    "the %s side but also read on the %s side — both "
                    "must import one shared definition"
                    % (_where(extractor.path, line), name,
                       extractor.role, other),
                ))

    # W509: the shipping codec's FORMAT_* constants in lockstep with the
    # declared frame table — same constant set, same tag bytes
    declared = {frame.constant: frame for frame in frames}
    defined = {}
    for extractor in extractors:
        for name, (tag, line) in extractor.format_defs.items():
            defined[name] = (tag, extractor.path, line)
    for name in sorted(declared):
        frame = declared[name]
        if name not in defined:
            # only meaningful when the codec module is among the analyzed
            # sources (tests drive partial source sets through
            # wirecheck_sources; a run without any FORMAT_* definitions
            # has nothing to be in lockstep with)
            if defined:
                diagnostics.append(Diagnostic.of(
                    "W509",
                    "record-batch frame %r is declared (tag %r) but no "
                    "analyzed module defines the constant %s"
                    % (name, frame.tag, name),
                ))
        elif defined[name][0] != frame.tag:
            tag, path, line = defined[name]
            diagnostics.append(Diagnostic.of(
                "W509",
                "%s: %s = %r disagrees with the declared frame tag %r — "
                "the receiving side would parse the payload as a "
                "different format"
                % (_where(path, line), name, tag, frame.tag),
            ))
    for name in sorted(defined):
        if name not in declared:
            tag, path, line = defined[name]
            diagnostics.append(Diagnostic.of(
                "W509",
                "%s: record-batch format %s (tag %r) is not declared in "
                "messages.FRAMES"
                % (_where(path, line), name, tag),
            ))
    return report


def _field_name_unshippable(extractors, construct, name):
    """Reason when a Name field was locally bound to an unshippable
    value in the construct site's file."""
    for extractor in extractors:
        if extractor.path != construct.path:
            continue
        for scope in extractor.closed_scopes:
            if name in scope.unshippable:
                return scope.unshippable[name]
    return None


# --- entry points -----------------------------------------------------------


def _vocabulary():
    from repro.dataflow.workers import messages

    vocab_names = {
        name: getattr(messages, name)
        for name in messages.__all__
        if isinstance(getattr(messages, name), str)
    }
    tag_pipe = {}
    for pipe in messages.PIPES:
        for tag in pipe.fields:
            tag_pipe[tag] = pipe
    return (
        messages.PIPES,
        tag_pipe,
        vocab_names,
        frozenset(messages.SHARED_CONSTANTS),
        messages.FRAMES,
    )


def wirecheck_sources(role_sources):
    """Run the drift check over in-memory sources.

    ``role_sources`` maps a role (``"parent"``/``"worker"``/
    ``"shared"``) to a list of ``(path, source_text)`` pairs.  Raises
    :class:`SyntaxError` on un-parseable source, like the other
    checkers' path entry points.
    """
    pipes, tag_pipe, vocab_names, shared_constants, frames = _vocabulary()
    extractors = []
    for role, sources in role_sources.items():
        for path, text in sources:
            tree = ast.parse(text, filename=path)
            extractor = _FileExtractor(
                path, role, tag_pipe, vocab_names, shared_constants
            )
            extractor.visit(tree)
            extractors.append(extractor)
    return _check_drift(extractors, pipes, shared_constants, frames)


def wirecheck_paths(role_paths=None):
    """Run the drift check over source files on disk.

    ``role_paths`` maps roles to path tuples; defaults to the shipped
    worker runtime (:data:`DEFAULT_ROLE_PATHS`).
    """
    role_sources = {}
    for role, paths in (role_paths or DEFAULT_ROLE_PATHS).items():
        pairs = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                pairs.append((path, handle.read()))
        role_sources[role] = pairs
    return wirecheck_sources(role_sources)

"""UDF shippability analyzer (``P4xx``).

The ROADMAP's top open item — sharded multi-process execution of the
paper's Fig. 3/4 worker-scaling runs — requires shipping the callables
installed into dataflow operators (and compiled into fused chain
templates) to worker processes.  Shipping is cloudpickle-style: the
function's code object plus its captured cells travel, so the question is
not "does the function pickle?" but "does everything it *closes over*
survive the trip, and does its behaviour stay equal across processes?".

This pass answers that statically, modeled on the C3xx lock linter:
closure introspection walks every cell, default and bound receiver a
callable drags along (recursing through function-valued captures), and an
AST pass over the callable's own source looks for mutation of captured
state and calls to process-dependent functions.  Findings:

* ``P401`` — captured synchronization primitive (lock, thread, event,
  thread-local, queue, executor/future, :class:`~repro.locks.InstrumentedLock`):
  a lock in a worker guards nothing the parent can see.
* ``P402`` — captured open handle (file, socket, generator): bound to
  this process's file-descriptor table or interpreter state.
* ``P403`` — the callable *mutates* a captured object (``self.n += 1``,
  ``seen.add(x)``): every worker would mutate its own copy and diverge
  from single-process execution.
* ``P404`` — call to a nondeterministic or process-dependent function
  (``time.*``, ``random``/``secrets``, ``uuid1/uuid4``, ``os.urandom``,
  thread identity, builtin ``id``).
* ``P405`` — a captured non-callable value that does not pickle.

A chain whose every stage UDF is finding-free is *certified shippable*;
:func:`certify_chain` (invoked from the fusion planner under
``certify=True``) raises :class:`ShippabilityError` otherwise, so an
unshippable closure is rejected at fusion compile time — before any
worker would receive it.
"""

import ast
import builtins
import functools
import inspect
import io
import os
import pickle
import queue
import random
import socket
import textwrap
import threading
import time
import types
import uuid
from typing import List

from .diagnostics import Diagnostic, sort_diagnostics


class ShippabilityError(AssertionError):
    """A callable (or fused chain) failed shippability certification."""

    def __init__(self, diagnostics, subject=None):
        self.diagnostics = list(diagnostics)
        self.subject = subject
        lines = ["%s failed shippability certification with %d finding(s):"
                 % (subject or "callable", len(self.diagnostics))]
        lines += ["  " + d.format() for d in self.diagnostics]
        super().__init__("\n".join(lines))


class ShippabilityReport:
    """Outcome of analyzing one or more callables."""

    def __init__(self, diagnostics, analyzed):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        #: display names of every callable (transitively) analyzed
        self.analyzed = list(analyzed)

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.is_error]

    @property
    def shippable(self):
        return not self.errors

    def format_summary(self):
        return "udfcheck: %d callable(s) analyzed, %d finding(s) — %s" % (
            len(self.analyzed),
            len(self.diagnostics),
            "shippable" if self.shippable else "NOT shippable",
        )


# Captured-value classification ------------------------------------------------

#: instance checks that make a captured value a P401 synchronization
#: primitive.  ``Lock``/``RLock`` are factory functions, so their concrete
#: types are sampled here once.
_SYNC_TYPES = (
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Thread,
    threading.Event,
    threading.Condition,
    threading.Semaphore,
    threading.Barrier,
    threading.local,
    queue.Queue,
)


def _sync_types():
    types_ = list(_SYNC_TYPES)
    try:
        from concurrent.futures import Executor, Future

        types_ += [Executor, Future]
    except ImportError:  # pragma: no cover — stdlib, but stay defensive
        pass
    try:
        from repro.locks import InstrumentedLock

        types_.append(InstrumentedLock)
    except ImportError:  # pragma: no cover
        pass
    return tuple(types_)


#: functions whose mere invocation makes a UDF process-dependent
_NONDETERMINISTIC = {
    time.time, time.monotonic, time.perf_counter, time.time_ns,
    os.urandom, uuid.uuid1, uuid.uuid4,
    threading.current_thread, threading.get_ident,
    builtins.id,
}

#: any attribute call into these modules is nondeterministic
_NONDETERMINISTIC_MODULES = {"random", "secrets"}

#: method names whose call on a captured container mutates shared state
_MUTATORS = frozenset({
    "append", "add", "extend", "update", "pop", "popitem", "remove",
    "clear", "insert", "setdefault", "discard", "appendleft", "popleft",
    "sort", "reverse",
})

_MUTABLE_CONTAINERS = (list, dict, set, bytearray)


def _describe(fn):
    module = getattr(fn, "__module__", None) or "<unknown>"
    qualname = (
        getattr(fn, "__qualname__", None)
        or getattr(fn, "__name__", None)
        or repr(fn)
    )
    return "%s.%s" % (module, qualname)


def classify_callable(fn, name=None, span=None):
    """Analyze one callable; returns its (sorted) ``P4xx`` diagnostics.

    ``span`` optionally names the query location the callable was
    compiled from; findings carry it so CLI output can print the same
    caret excerpts the linter does.
    """
    analyzer = _UdfAnalyzer()
    analyzer.set_span(span)
    analyzer.analyze(fn, name or _describe(fn))
    return sort_diagnostics(analyzer.diagnostics)


def analyze_callables(named_fns):
    """Analyze ``(name, fn)`` or ``(name, fn, span)`` tuples into one
    :class:`ShippabilityReport`; a span attaches to every finding of the
    callable (including its transitively analyzed captures)."""
    analyzer = _UdfAnalyzer()
    for item in named_fns:
        name, fn = item[0], item[1]
        analyzer.set_span(item[2] if len(item) > 2 else None)
        analyzer.analyze(fn, name)
    return ShippabilityReport(
        sort_diagnostics(analyzer.diagnostics), analyzer.analyzed
    )


class _UdfAnalyzer:
    """One analysis pass; accumulates diagnostics across callables."""

    def __init__(self):
        self.diagnostics = []
        self.analyzed = []
        self._visited = set()
        self._span = None

    def set_span(self, span):
        """The query location attached to findings until the next call."""
        self._span = span

    def _flag(self, code, name, detail):
        self.diagnostics.append(
            Diagnostic.of(code, "%s: %s" % (name, detail), span=self._span)
        )

    def analyze(self, fn, name):
        if id(fn) in self._visited:
            return
        self._visited.add(id(fn))
        self.analyzed.append(name)

        if isinstance(fn, functools.partial):
            self.analyze(fn.func, "%s.func" % name)
            for index, value in enumerate(fn.args):
                self._classify_capture(value, name, "partial arg %d" % index)
            for key, value in fn.keywords.items():
                self._classify_capture(value, name, "partial kwarg %r" % key)
            return
        if isinstance(fn, types.MethodType):
            self._classify_capture(fn.__self__, name, "bound receiver")
            self.analyze(fn.__func__, "%s.__func__" % name)
            return
        if isinstance(fn, types.BuiltinFunctionType):
            return  # ships by reference, no cells, no Python body
        if not isinstance(fn, types.FunctionType):
            # a callable object: its __call__ plus its instance state
            call = getattr(type(fn), "__call__", None)
            if isinstance(call, types.FunctionType):
                self._classify_capture(fn, name, "callable instance")
                self.analyze(call, "%s.__call__" % name)
            return

        captured = {}
        if fn.__closure__:
            for cell_name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
                try:
                    value = cell.cell_contents
                except ValueError:  # unfilled cell (recursive def)
                    continue
                captured[cell_name] = value
                self._classify_capture(
                    value, name, "captured %r" % cell_name
                )
        if fn.__defaults__:
            for index, value in enumerate(fn.__defaults__):
                self._classify_capture(value, name, "default %d" % index)
        if fn.__kwdefaults__:
            for key, value in fn.__kwdefaults__.items():
                self._classify_capture(value, name, "default %r" % key)

        # referenced module globals: a worker re-importing the module gets
        # its *own* lock/handle instance, so these are as process-bound as
        # captured ones (co_names over-approximates — attribute names land
        # there too — but the __globals__ membership filter is exact)
        mutable_globals = set()
        for global_name in fn.__code__.co_names:
            if global_name not in fn.__globals__:
                continue
            value = fn.__globals__[global_name]
            if isinstance(value, _sync_types()):
                self._flag(
                    "P401", name,
                    "references global %r, a %s — synchronization state "
                    "cannot cross processes"
                    % (global_name, type(value).__name__),
                )
            elif isinstance(
                value, (io.IOBase, socket.socket, types.GeneratorType)
            ):
                self._flag(
                    "P402", name,
                    "references global %r, an open %s bound to this process"
                    % (global_name, type(value).__name__),
                )
            elif isinstance(value, _MUTABLE_CONTAINERS):
                mutable_globals.add(global_name)

        self._analyze_source(fn, name, captured, mutable_globals)

    # -- captured values -------------------------------------------------------

    def _classify_capture(self, value, name, where):
        if isinstance(value, _sync_types()):
            self._flag(
                "P401", name,
                "%s is a %s — synchronization state cannot cross processes"
                % (where, type(value).__name__),
            )
            return
        if isinstance(value, (io.IOBase, socket.socket, types.GeneratorType)):
            self._flag(
                "P402", name,
                "%s is an open %s bound to this process"
                % (where, type(value).__name__),
            )
            return
        if isinstance(value, types.ModuleType):
            return  # ships by reference
        if callable(value):
            self.analyze(value, "%s<%s>" % (name, where))
            return
        # containers ship element-wise (a function-valued element travels
        # as code + cells like the UDF itself), so classify the elements;
        # mutation of the container is the AST pass's P403, not a capture
        # finding
        if isinstance(value, (tuple, list, set, frozenset)):
            for index, item in enumerate(value):
                self._classify_capture(item, name, "%s[%d]" % (where, index))
            return
        if isinstance(value, dict):
            for key, item in value.items():
                self._classify_capture(item, name, "%s[%r]" % (where, key))
            return
        try:
            pickle.dumps(value)
        except Exception as exc:  # noqa: BLE001 — any failure is the finding
            self._flag(
                "P405", name,
                "%s (%s) does not pickle: %s"
                % (where, type(value).__name__, exc),
            )

    # -- the callable's own body -----------------------------------------------

    def _analyze_source(self, fn, name, captured, mutable_globals=frozenset()):
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError):
            return  # no retrievable source (exec-compiled template, REPL)
        watched = set(fn.__code__.co_freevars) | set(mutable_globals)
        for node in ast.walk(tree):
            if isinstance(node, ast.AugAssign):
                base = _assignment_base(node.target)
                if base in watched:
                    self._flag(
                        "P403", name,
                        "augmented assignment mutates captured %r (line %d)"
                        % (base, node.lineno),
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    base = _assignment_base(target)
                    if base in watched:
                        self._flag(
                            "P403", name,
                            "assignment mutates captured %r (line %d)"
                            % (base, node.lineno),
                        )
            elif isinstance(node, ast.Call):
                self._classify_call(fn, name, node, captured, watched)

    def _classify_call(self, fn, name, node, captured, watched):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in watched
        ):
            value = captured.get(func.value.id)
            if value is None or isinstance(value, _MUTABLE_CONTAINERS):
                self._flag(
                    "P403", name,
                    "call %r.%s() mutates captured state (line %d)"
                    % (func.value.id, func.attr, node.lineno),
                )
                return
        resolved, dotted = _resolve_call(func, fn, captured)
        if resolved is None:
            return
        if resolved in _NONDETERMINISTIC:
            self._flag(
                "P404", name,
                "calls process-dependent %s (line %d)" % (dotted, node.lineno),
            )
        elif (
            getattr(resolved, "__module__", None) in _NONDETERMINISTIC_MODULES
            or isinstance(getattr(resolved, "__self__", None), random.Random)
        ):
            self._flag(
                "P404", name,
                "calls nondeterministic %s (line %d)" % (dotted, node.lineno),
            )


def _assignment_base(target):
    """The root ``Name`` of an attribute/subscript assignment target.

    ``self.checked += 1`` → ``self``; a bare ``Name`` target rebinds the
    local (or triggers ``nonlocal``, which the compiler rejects without
    the declaration) and is not object mutation.
    """
    node = target
    seen_deref = False
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        seen_deref = True
        node = node.value
    if seen_deref and isinstance(node, ast.Name):
        return node.id
    return None


def _resolve_call(func, fn, captured):
    """Resolve an ``ast.Call`` callee to a runtime object, best effort.

    Walks dotted names rooted in a captured cell, the function's globals
    or builtins (aliased imports resolve naturally because the *object*
    is followed, not the source text).  Returns ``(object, dotted_name)``
    or ``(None, None)`` when unresolvable — unknown names are ignored
    rather than guessed at.
    """
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None, None
    parts.append(node.id)
    parts.reverse()
    root = parts[0]
    if root in captured:
        value = captured[root]
    elif root in fn.__globals__:
        value = fn.__globals__[root]
    elif hasattr(builtins, root):
        value = getattr(builtins, root)
    else:
        return None, None
    for attr in parts[1:]:
        try:
            value = getattr(value, attr)
        except AttributeError:
            return None, None
    dotted = ".".join(parts)
    module = getattr(value, "__module__", None)
    if isinstance(fn.__globals__.get(root), types.ModuleType):
        dotted = ".".join(
            [fn.__globals__[root].__name__] + parts[1:]
        )
    elif module and not isinstance(value, types.ModuleType):
        dotted = "%s.%s" % (module, parts[-1])
    return value, dotted


# Dataflow / fusion entry points -----------------------------------------------

#: operator attributes that hold user-supplied callables
_UDF_ATTRS = ("fn", "predicate", "key_fn", "reduce_fn", "left_key",
              "right_key")


def iter_dataflow_udfs(root, spans=None):
    """Yield ``(name, fn)`` for every UDF reachable from ``root``.

    Walks the operator DAG through ``parents`` exactly like the
    evaluator; the name identifies the operator and the slot so a finding
    points at where the callable was installed.  With ``spans`` — a map
    from ``id(dataflow node)`` to a source :class:`~repro.cypher.span
    .Span` (the runner builds one from the physical plan) — yields
    ``(name, fn, span)`` triples instead so findings locate the query
    element the callable was compiled from.
    """
    stack = [root]
    seen = {id(root)}
    while stack:
        node = stack.pop()
        for attr in _UDF_ATTRS:
            fn = getattr(node, attr, None)
            if callable(fn):
                name = "%s.%s" % (node.name, attr)
                if spans is None:
                    yield name, fn
                else:
                    yield name, fn, spans.get(id(node))
        for parent in getattr(node, "parents", ()):
            if id(parent) not in seen:
                seen.add(id(parent))
                stack.append(parent)


def analyze_dataflow(root, spans=None):
    """Shippability report over every UDF in the dataflow DAG of ``root``."""
    return analyze_callables(iter_dataflow_udfs(root, spans=spans))


def analyze_chain(chain):
    """Shippability report over one fused chain's stage UDFs."""
    return analyze_callables(
        ("%s[stage %d]" % (chain.name, index), fn)
        for index, fn in enumerate(chain._fns)
    )


def certify_chain(chain):
    """Certify a fused chain shippable; raises :class:`ShippabilityError`.

    Called by the fusion planner under ``certify=True`` so an unshippable
    closure is rejected at fusion compile time, before any execution.
    Returns the (clean) report on success.
    """
    report = analyze_chain(chain)
    if not report.shippable:
        raise ShippabilityError(report.errors, subject=chain.name)
    return report

"""Static cost-bound analyzer: certified worst-case plan cost (``S405``).

Dual to the planner's cardinality *estimator* (which aims at the likely
case and may err in either direction), this pass composes per-operator
**upper bounds** that provably hold for any data consistent with the
graph statistics:

* a leaf emits at most its label-alternation count (predicates only
  filter — the selectivity floor of any CNF is taken as 1.0, never a
  guess below it);
* a join or cross product emits at most ``|L| · |R|``;
* a var-length expansion emits at most
  ``|input| · Σ_{h=max(lower,1)}^{upper} d_max^h`` (plus ``|input|``
  for a zero-hop lower bound), where ``d_max`` is the per-edge-label
  worst-case fan-out recorded in :class:`~repro.engine.statistics
  .GraphStatistics` — the hop-bound composition grounding the
  worst-case bounds surveyed for modern graph query languages;
* selections and projections never grow their input.

Each operator's bytes-moved bound prices its §3.3 embedding layout:
``columns × 9`` id bytes, ``4 + (2·upper − 1) · 8`` bytes per path slot
at its hop ceiling, and :data:`PROPERTY_RECORD_BOUND` bytes per property
record (a documented cap, not a guarantee — property values are
unbounded in principle).

The resulting :class:`CostCertificate` rides on prepared statements and
is consulted by :class:`~repro.server.service.QueryService` admission
control: a query whose certified bound exceeds the configured threshold
is rejected at submit time, before any operator executes.
"""

import math
from typing import List, Optional

from .diagnostics import Diagnostic

#: assumed worst-case serialized size of one property record (2-byte
#: length prefix + value).  Property values are statically unbounded, so
#: this is a pricing convention, not a proven cap — the cardinality
#: bounds, which drive admission, do not depend on it.
PROPERTY_RECORD_BOUND = 256


class OperatorBound:
    """The certified worst case of one operator's output."""

    __slots__ = ("operator", "cardinality_bound", "row_bytes_bound",
                 "bytes_bound")

    def __init__(self, operator, cardinality_bound, row_bytes_bound):
        #: ``describe()`` of the bounded operator
        self.operator = operator
        self.cardinality_bound = cardinality_bound
        self.row_bytes_bound = row_bytes_bound
        self.bytes_bound = (
            math.inf if cardinality_bound == math.inf
            else cardinality_bound * row_bytes_bound
        )

    def __repr__(self):
        return "OperatorBound(%s, card<=%s, bytes<=%s)" % (
            self.operator, self.cardinality_bound, self.bytes_bound
        )


class CostCertificate:
    """Statically proven cost bounds for one physical plan."""

    def __init__(self, records, statistics_version=0):
        self.records: List[OperatorBound] = list(records)
        #: the :attr:`GraphStatistics.version` the bounds were proven
        #: against — a version bump invalidates the certificate exactly
        #: like it invalidates cached plans
        self.statistics_version = statistics_version

    @property
    def max_cardinality_bound(self):
        return max(
            (r.cardinality_bound for r in self.records), default=0
        )

    @property
    def total_bytes_bound(self):
        return sum(r.bytes_bound for r in self.records)

    def worst(self) -> Optional[OperatorBound]:
        if not self.records:
            return None
        return max(self.records, key=lambda r: r.cardinality_bound)

    def admissible(self, max_cost_bound):
        """True when every operator's cardinality bound fits the budget."""
        if max_cost_bound is None:
            return True
        return self.max_cardinality_bound <= max_cost_bound

    def diagnostic(self, max_cost_bound):
        """The ``S405`` finding for an inadmissible plan (else ``None``)."""
        if self.admissible(max_cost_bound):
            return None
        worst = self.worst()
        return Diagnostic.of(
            "S405",
            "%s: certified output bound %s exceeds the admission "
            "threshold %s (certified bytes moved <= %s)"
            % (
                worst.operator,
                _format_bound(worst.cardinality_bound),
                _format_bound(max_cost_bound),
                _format_bound(self.total_bytes_bound),
            ),
        )

    def format_table(self):
        lines = ["%-60s %14s %16s" % ("operator", "card<=", "bytes<=")]
        for record in self.records:
            lines.append(
                "%-60s %14s %16s"
                % (
                    record.operator[:60],
                    _format_bound(record.cardinality_bound),
                    _format_bound(record.bytes_bound),
                )
            )
        return "\n".join(lines)

    def format_summary(self):
        return (
            "costbound: %d operator(s) bounded, max cardinality <= %s, "
            "bytes moved <= %s"
            % (
                len(self.records),
                _format_bound(self.max_cardinality_bound),
                _format_bound(self.total_bytes_bound),
            )
        )


def _format_bound(value):
    if value == math.inf:
        return "unbounded"
    if value >= 1e6:
        return "%.3g" % value
    return "%d" % value


def certify_plan(root, statistics):
    """Compose per-operator upper bounds over the plan under ``root``.

    Requires :class:`~repro.engine.statistics.GraphStatistics`; without
    data-graph counts nothing is provable.  An operator with no bound
    rule is priced as unbounded, which makes the plan inadmissible under
    any finite threshold — conservative by construction.
    """
    if statistics is None:
        raise ValueError("certify_plan requires graph statistics")
    analyzer = _BoundAnalyzer(statistics)
    analyzer.visit(root)
    return CostCertificate(
        analyzer.records,
        statistics_version=getattr(statistics, "version", 0),
    )


class _BoundAnalyzer:
    """One bottom-up pass composing cardinality and byte bounds."""

    def __init__(self, statistics):
        self.statistics = statistics
        self.records = []
        #: path variable -> declared upper hop bound, for byte pricing
        self._path_uppers = {}

    def visit(self, op):
        child_bounds = [self.visit(child) for child in op.children]
        cardinality = self._cardinality_bound(op, child_bounds)
        record = OperatorBound(
            op.describe(), cardinality, self._row_bytes_bound(op.meta)
        )
        self.records.append(record)
        return cardinality

    # Cardinality bounds -------------------------------------------------------

    def _cardinality_bound(self, op, child_bounds):
        from repro.engine.operators.expand import ExpandEmbeddings
        from repro.engine.operators.filter_project import (
            ProjectEmbeddings,
            SelectEmbeddings,
        )
        from repro.engine.operators.join import (
            CartesianEmbeddings,
            JoinEmbeddings,
        )
        from repro.engine.operators.leaves import (
            SelectAndProjectEdges,
            SelectAndProjectVertices,
        )
        from repro.engine.operators.value_join import JoinEmbeddingsOnProperty

        stats = self.statistics
        if isinstance(op, SelectAndProjectVertices):
            return stats.vertices_with_labels(op.query_vertex.labels)
        if isinstance(op, SelectAndProjectEdges):
            count = stats.edges_with_labels(op.query_edge.types)
            # undirected leaves emit both orientations of every edge
            return count * 2 if op.query_edge.undirected else count
        if isinstance(op, (SelectEmbeddings, ProjectEmbeddings)):
            return child_bounds[0]
        if isinstance(
            op, (JoinEmbeddings, CartesianEmbeddings, JoinEmbeddingsOnProperty)
        ):
            return child_bounds[0] * child_bounds[1]
        if isinstance(op, ExpandEmbeddings):
            return self._expand_bound(op, child_bounds[0])
        return math.inf  # no bound rule: conservatively unbounded

    def _expand_bound(self, op, input_bound):
        edge = op.query_edge
        self._path_uppers[edge.variable] = edge.upper or 0
        if edge.undirected:
            fanout = (
                self.statistics.max_out_degree(edge.types)
                + self.statistics.max_in_degree(edge.types)
            )
        elif op.reverse:
            fanout = self.statistics.max_in_degree(edge.types)
        else:
            fanout = self.statistics.max_out_degree(edge.types)
        lower = max(edge.lower or 0, 0)
        upper = edge.upper if edge.upper is not None else lower
        paths = sum(
            fanout ** hops for hops in range(max(lower, 1), upper + 1)
        )
        if lower == 0:
            paths += 1  # the zero-hop emission keeps the input row
        return input_bound * paths

    # Byte bounds --------------------------------------------------------------

    def _row_bytes_bound(self, meta):
        """Worst-case serialized size of one embedding of this shape."""
        from repro.engine.embedding import ENTRY_WIDTH, PATH_COUNT_WIDTH

        if meta is None:
            return 0
        total = meta.column_count * ENTRY_WIDTH
        for variable in meta.variables:
            if meta.entry_kind(variable) == "p":
                upper = self._path_uppers.get(variable, 0)
                total += PATH_COUNT_WIDTH + max(2 * upper - 1, 0) * 8
        total += meta.property_count * PROPERTY_RECORD_BOUND
        return total

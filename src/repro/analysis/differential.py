"""Cross-planner differential checking.

The engine ships three planners (greedy, exhaustive, left-deep) that must
be observationally equivalent: for any query they may pick different join
orders but must return the same result *multiset* — the central soundness
claim of the formal-semantics line of work on Cypher.  The differential
checker executes one query under every planner (with sanitized execution
on, in collect mode) and compares the canonical result rows; any
disagreement becomes an ``S210`` diagnostic, any embedding-level
corruption surfaces as the sanitizer's own ``S2xx`` findings.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from .diagnostics import Diagnostic


@dataclass
class PlannerRun:
    """Result of one planner's sanitized execution of the query."""

    planner: str
    rows: Counter
    checked: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def row_count(self):
        return sum(self.rows.values())


@dataclass
class DifferentialReport:
    """Outcome of a :func:`differential_check` run."""

    query: str
    runs: List[PlannerRun]
    diagnostics: List[Diagnostic]

    @property
    def agree(self):
        """True when every planner produced the same result multiset."""
        return not any(d.code == "S210" for d in self.diagnostics)

    @property
    def clean(self):
        """True when the planners agree *and* no sanitizer finding fired."""
        return not self.diagnostics

    def summary(self):
        lines = []
        for run in self.runs:
            lines.append(
                "%-18s %6d row(s), %6d embedding(s) sanitized, %d finding(s)"
                % (run.planner, run.row_count, run.checked, len(run.diagnostics))
            )
        verdict = "agree" if self.agree else "DISAGREE"
        lines.append(
            "planners %s; %d diagnostic(s) total"
            % (verdict, len(self.diagnostics))
        )
        return "\n".join(lines)


def compare_runs(runs):
    """``S210`` diagnostics for every run disagreeing with the first."""
    diagnostics = []
    if not runs:
        return diagnostics
    reference = runs[0]
    for run in runs[1:]:
        if run.rows == reference.rows:
            continue
        missing = reference.rows - run.rows  # Counter difference keeps positives
        extra = run.rows - reference.rows
        fragments = []
        if missing:
            sample = next(iter(missing))
            fragments.append(
                "%d row(s) only under %s (e.g. %r)"
                % (sum(missing.values()), reference.planner, sample)
            )
        if extra:
            sample = next(iter(extra))
            fragments.append(
                "%d row(s) only under %s (e.g. %r)"
                % (sum(extra.values()), run.planner, sample)
            )
        diagnostics.append(
            Diagnostic.of(
                "S210",
                "%s and %s return different multisets: %s"
                % (reference.planner, run.planner, "; ".join(fragments)),
            )
        )
    return diagnostics


def differential_check(
    graph,
    query,
    parameters=None,
    planners=None,
    statistics=None,
    vertex_strategy=None,
    edge_strategy=None,
    sanitize=True,
    prune=False,
):
    """Execute ``query`` under every planner and compare result multisets.

    Returns a :class:`DifferentialReport`; ``report.clean`` is the full
    acceptance condition (identical multisets and zero sanitizer
    findings).  ``planners`` defaults to all three; ``statistics`` is
    computed once and shared so the planners see identical inputs.
    Results are compared on order-independent canonical rows (variable →
    bound identifier(s)), so differing column orders between plans do not
    matter.
    """
    # Imported here: repro.analysis must stay importable before the engine
    # package finishes initializing (the runner imports diagnostics).
    from repro.engine import CypherRunner, GraphStatistics
    from repro.engine.naive import canonical_rows_from_embeddings
    from repro.engine.planning import (
        ExhaustivePlanner,
        GreedyPlanner,
        LeftDeepPlanner,
    )

    if planners is None:
        planners = (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    runs = []
    diagnostics = []
    for planner_cls in planners:
        runner = CypherRunner(
            graph,
            vertex_strategy=vertex_strategy,
            edge_strategy=edge_strategy,
            statistics=statistics,
            planner_cls=planner_cls,
            sanitize="collect" if sanitize else False,
            prune=prune,
        )
        embeddings, meta = runner.execute_embeddings(query, parameters)
        rows = Counter(canonical_rows_from_embeddings(embeddings, meta))
        run = PlannerRun(planner=planner_cls.__name__, rows=rows)
        if runner.last_sanitizer is not None:
            run.checked = runner.last_sanitizer.checked
            run.diagnostics = list(runner.last_sanitizer.diagnostics)
            diagnostics.extend(run.diagnostics)
        runs.append(run)
    diagnostics.extend(compare_runs(runs))
    return DifferentialReport(query=query, runs=runs, diagnostics=diagnostics)


def fusion_differential_check(
    graph,
    query,
    parameters=None,
    planners=None,
    statistics=None,
    vertex_strategy=None,
    edge_strategy=None,
    prune=False,
):
    """Batched-fused vs. per-record execution, per planner.

    The fusion pass and the compiled accessors must be pure plumbing: for
    every planner the embedding multiset of a fused execution has to equal
    the per-record one bit for bit.  Runs each planner twice — once with
    ``fused=True``, once with ``fused=False`` — on the *same* statistics
    and compares the raw embedding multisets (stricter than the canonical
    rows: byte-level embedding equality).  Disagreements become ``S210``
    diagnostics in the returned :class:`DifferentialReport`.
    """
    from repro.engine import CypherRunner, GraphStatistics
    from repro.engine.planning import (
        ExhaustivePlanner,
        GreedyPlanner,
        LeftDeepPlanner,
    )

    if planners is None:
        planners = (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    runs = []
    diagnostics = []
    for planner_cls in planners:
        pair = []
        for fused in (True, False):
            runner = CypherRunner(
                graph,
                vertex_strategy=vertex_strategy,
                edge_strategy=edge_strategy,
                statistics=statistics,
                planner_cls=planner_cls,
                fused=fused,
                prune=prune,
            )
            embeddings, _ = runner.execute_embeddings(query, parameters)
            pair.append(
                PlannerRun(
                    planner="%s[%s]"
                    % (planner_cls.__name__, "fused" if fused else "per-record"),
                    rows=Counter(embeddings),
                )
            )
        # compared per planner: different planners legitimately lay out
        # their embedding columns differently, the two modes of one
        # planner must agree byte for byte
        diagnostics.extend(compare_runs(pair))
        runs.extend(pair)
    return DifferentialReport(query=query, runs=runs, diagnostics=diagnostics)

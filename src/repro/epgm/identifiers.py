"""Graph element identifiers.

Gradoop identifies every graph head, vertex and edge with a fixed-width
``GradoopId`` (12 bytes in the Java implementation).  We use a 64-bit value:
fixed width keeps the embedding's ``idData`` array constant-time indexable
(paper §3.3) while 8 bytes is plenty for laptop-scale data.
"""

import itertools
import struct

_ID_STRUCT = struct.Struct(">Q")

#: Serialized width of a GradoopId in bytes.
ID_BYTES = 8


class GradoopId:
    """A fixed-width, totally ordered element identifier."""

    __slots__ = ("value",)

    def __init__(self, value):
        if not isinstance(value, int):
            raise TypeError("GradoopId value must be int, got %r" % type(value).__name__)
        if not 0 <= value < (1 << 64):
            raise ValueError("GradoopId out of range: %d" % value)
        self.value = value

    def to_bytes(self):
        """Serialize to exactly :data:`ID_BYTES` bytes (big-endian)."""
        return _ID_STRUCT.pack(self.value)

    @classmethod
    def from_bytes(cls, data, offset=0):
        """Deserialize from ``data`` starting at ``offset``."""
        return cls(_ID_STRUCT.unpack_from(data, offset)[0])

    def stable_hash(self):
        """Hook used by :func:`repro.dataflow.stable_hash`."""
        from repro.dataflow import stable_hash

        return stable_hash(self.value)

    def __eq__(self, other):
        return isinstance(other, GradoopId) and self.value == other.value

    def __lt__(self, other):
        if not isinstance(other, GradoopId):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other):
        if not isinstance(other, GradoopId):
            return NotImplemented
        return self.value <= other.value

    def __hash__(self):
        return hash(self.value)

    def __repr__(self):
        return "GradoopId(%d)" % self.value

    def __str__(self):
        return "%016x" % self.value


#: Derived graphs get ids from disjoint blocks above this base so heads of
#: independently created graphs never collide (block allocation is
#: deterministic per process: creation order fixes the ids).
DERIVED_ID_BASE = 1 << 40
_DERIVED_BLOCK_SIZE = 1 << 24
_derived_blocks = itertools.count()


class GradoopIdFactory:
    """Deterministic id source.

    A monotonic counter rather than random bytes: reproductions must be
    bit-for-bit repeatable so that simulated shuffles, plans and runtimes
    do not drift between runs.
    """

    def __init__(self, start=1):
        self._counter = itertools.count(start)

    @classmethod
    def derived(cls):
        """A factory drawing from a fresh block of the derived-id space."""
        block = next(_derived_blocks)
        return cls(start=DERIVED_ID_BASE + block * _DERIVED_BLOCK_SIZE)

    def next_id(self):
        return GradoopId(next(self._counter))

    def next_ids(self, count):
        return [self.next_id() for _ in range(count)]

"""Graph data partitioning strategies (paper §5 outlook).

The conclusion names "data partitioning as well as replication strategies"
as the lever for reducing shuffle cost.  Two placements are provided:

* ``ROUND_ROBIN`` — the Flink default: balanced block placement with no
  locality; every key-based operation shuffles.
* ``HASH`` — vertices hash-partitioned by id, edges by **source id**.  A
  join of embeddings rooted at a vertex with that vertex's outgoing edges
  finds the edges already on the right worker, so the simulated shuffle
  for that side is zero (the dataflow layer detects records that stay put
  and does not charge them).
"""

import enum

from repro.dataflow.partitioner import partition_index


class GraphPartitioning(enum.Enum):
    ROUND_ROBIN = "round-robin"
    HASH = "hash"


def partition_elements(elements, key_fn, parallelism):
    """Distribute ``elements`` into ``parallelism`` hash partitions."""
    partitions = [[] for _ in range(parallelism)]
    for element in elements:
        partitions[partition_index(key_fn(element), parallelism)].append(element)
    return partitions


def vertex_dataset(environment, vertices, partitioning, name="vertices"):
    """Build the vertex dataset under the chosen placement."""
    if partitioning is GraphPartitioning.HASH:
        return environment.from_partitions(
            partition_elements(
                vertices, lambda v: v.id, environment.parallelism
            ),
            name=name,
        )
    return environment.from_collection(list(vertices), name=name)


def edge_dataset(environment, edges, partitioning, name="edges"):
    """Build the edge dataset under the chosen placement."""
    if partitioning is GraphPartitioning.HASH:
        return environment.from_partitions(
            partition_elements(
                edges, lambda e: e.source_id, environment.parallelism
            ),
            name=name,
        )
    return environment.from_collection(list(edges), name=name)

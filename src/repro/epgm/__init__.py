"""The Extended Property Graph Model (EPGM), paper §2.1 and §2.4."""

from .elements import Edge, Element, GraphElement, GraphHead, Vertex
from .graph_collection import GraphCollection
from .identifiers import ID_BYTES, GradoopId, GradoopIdFactory
from .indexed import IndexedLogicalGraph
from .logical_graph import LogicalGraph
from .partitioning import GraphPartitioning
from .properties import Properties
from .property_value import NULL_VALUE, IncomparableError, PropertyValue

__all__ = [
    "Edge",
    "Element",
    "GradoopId",
    "GradoopIdFactory",
    "GraphCollection",
    "GraphElement",
    "GraphPartitioning",
    "GraphHead",
    "ID_BYTES",
    "IncomparableError",
    "IndexedLogicalGraph",
    "LogicalGraph",
    "NULL_VALUE",
    "Properties",
    "PropertyValue",
    "Vertex",
]

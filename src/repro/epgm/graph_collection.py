"""Graph collections: sets of possibly overlapping logical graphs."""

from .elements import GraphHead
from .logical_graph import LogicalGraph


class GraphCollection:
    """Graph heads, vertices and edges as three datasets (paper §2.4).

    Vertices and edges carry graph membership in ``graph_ids``; a collection
    can therefore share elements between its logical graphs without copying.
    """

    def __init__(self, environment, graph_heads, vertices, edges):
        self.environment = environment
        self._graph_heads = graph_heads
        self._vertices = vertices
        self._edges = edges

    @classmethod
    def from_collections(cls, environment, graph_heads, vertices, edges):
        return cls(
            environment,
            environment.from_collection(list(graph_heads), name="graph-heads"),
            environment.from_collection(list(vertices), name="vertices"),
            environment.from_collection(list(edges), name="edges"),
        )

    @classmethod
    def empty(cls, environment):
        return cls.from_collections(environment, [], [], [])

    @classmethod
    def from_graph(cls, graph):
        """A singleton collection containing one logical graph."""
        return cls(
            graph.environment,
            graph.environment.from_collection([graph.graph_head], name="graph-heads"),
            graph.vertices,
            graph.edges,
        )

    # Accessors ----------------------------------------------------------------

    @property
    def graph_heads(self):
        return self._graph_heads

    @property
    def vertices(self):
        return self._vertices

    @property
    def edges(self):
        return self._edges

    def graph_count(self):
        return self._graph_heads.count()

    def graph_ids(self):
        return [head.id for head in self._graph_heads.collect()]

    def collect_graph_heads(self):
        return self._graph_heads.collect()

    def get_graph(self, graph_id):
        """Materialize one logical graph of the collection by id."""
        heads = [h for h in self._graph_heads.collect() if h.id == graph_id]
        if not heads:
            raise KeyError("no graph with id %s in collection" % graph_id)
        head = heads[0]
        vertices = self._vertices.filter(
            lambda v, gid=graph_id: v.in_graph(gid), name="graph-vertices"
        )
        edges = self._edges.filter(
            lambda e, gid=graph_id: e.in_graph(gid), name="graph-edges"
        )
        return LogicalGraph(self.environment, head, vertices, edges)

    def graphs(self):
        """Materialize every logical graph in the collection."""
        return [self.get_graph(head.id) for head in self._graph_heads.collect()]

    # Operators -------------------------------------------------------------------

    def cypher(self, query, **kwargs):
        """Run the pattern-matching operator on every member graph.

        Returns one collection holding the union of all matches; each
        match head additionally records which member graph it came from
        (``__sourceGraph``).  Keyword arguments are forwarded to
        :meth:`LogicalGraph.cypher`.
        """
        from .property_value import PropertyValue

        results = None
        for graph in self.graphs():
            matches = graph.cypher(query, **kwargs)
            for head in matches.collect_graph_heads():
                head.set_property(
                    "__sourceGraph", PropertyValue(graph.graph_head.id.value)
                )
            results = matches if results is None else results.union(matches)
        if results is None:
            return GraphCollection.empty(self.environment)
        return results

    def apply(self, operator_fn):
        """Apply a unary logical-graph operator to every member graph.

        Mirrors Gradoop's *apply* operators (ApplyAggregation,
        ApplyTransformation, ...): ``operator_fn(graph) -> graph`` runs per
        member and the results form a new collection.

        .. code-block:: python

            matches.apply(lambda g: g.aggregate("n", Count("vertices")))
        """
        transformed = [operator_fn(graph) for graph in self.graphs()]
        heads = []
        vertices = {}
        edges = {}
        for graph in transformed:
            heads.append(graph.graph_head)
            for vertex in graph.collect_vertices():
                vertex.add_graph_id(graph.graph_head.id)
                vertices[(vertex.id, id(vertex))] = vertex
            for edge in graph.collect_edges():
                edge.add_graph_id(graph.graph_head.id)
                edges[(edge.id, id(edge))] = edge
        return GraphCollection.from_collections(
            self.environment, heads, list(vertices.values()), list(edges.values())
        )

    def reduce(self, combine_fn):
        """Fold the member graphs into one logical graph.

        ``combine_fn(left, right) -> graph`` is applied pairwise, like
        Gradoop's ReduceCombination; raises on an empty collection.
        """
        graphs = self.graphs()
        if not graphs:
            raise ValueError("cannot reduce an empty collection")
        result = graphs[0]
        for graph in graphs[1:]:
            result = combine_fn(result, graph)
        return result

    def select(self, predicate):
        """Keep graphs whose head satisfies ``predicate`` (EPGM selection)."""
        kept_heads = self._graph_heads.filter(predicate, name="select-graphs")
        kept_ids = set(h.id for h in kept_heads.collect())
        return GraphCollection(
            self.environment,
            kept_heads,
            self._vertices.filter(
                lambda v, ids=kept_ids: bool(v.graph_ids & ids), name="select-vertices"
            ),
            self._edges.filter(
                lambda e, ids=kept_ids: bool(e.graph_ids & ids), name="select-edges"
            ),
        )

    def union(self, other):
        """All graphs of both collections (by graph id, deduplicated)."""
        heads = (
            self._graph_heads.union(other._graph_heads).distinct(key=lambda h: h.id)
        )
        vertices = self._vertices.union(other._vertices).distinct(key=lambda v: v.id)
        edges = self._edges.union(other._edges).distinct(key=lambda e: e.id)
        return GraphCollection(self.environment, heads, vertices, edges)

    def intersection(self, other):
        """Graphs contained in both collections (by graph id)."""
        other_ids = set(other.graph_ids())
        return self.select(lambda head, ids=other_ids: head.id in ids)

    def difference(self, other):
        """Graphs of this collection that are not in ``other``."""
        other_ids = set(other.graph_ids())
        return self.select(lambda head, ids=other_ids: head.id not in ids)

    def __repr__(self):
        return "GraphCollection(env=%r)" % (self.environment,)


def collection_from_heads_and_elements(environment, heads, vertices, edges):
    """Assemble a collection ensuring heads are GraphHead instances."""
    for head in heads:
        if not isinstance(head, GraphHead):
            raise TypeError("expected GraphHead, got %r" % type(head).__name__)
    return GraphCollection.from_collections(environment, heads, vertices, edges)

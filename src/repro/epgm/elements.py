"""EPGM elements: graph heads, vertices and edges (Definition 2.1)."""

from .identifiers import GradoopId
from .properties import Properties


class Element:
    """Base for everything with an id, a type label and properties."""

    __slots__ = ("id", "label", "properties")

    def __init__(self, element_id, label="", properties=None):
        if not isinstance(element_id, GradoopId):
            raise TypeError("element id must be a GradoopId")
        self.id = element_id
        self.label = label
        if properties is None:
            self.properties = Properties()
        elif isinstance(properties, Properties):
            self.properties = properties
        else:
            self.properties = Properties(properties)

    def get_property(self, key):
        """Property value for ``key`` (NULL if absent) — κ of Definition 2.1."""
        return self.properties.get(key)

    def set_property(self, key, value):
        self.properties.set(key, value)

    def has_property(self, key):
        return self.properties.has(key)

    def serialized_size(self):
        return 8 + len(self.label.encode("utf-8")) + self.properties.serialized_size()

    def __eq__(self, other):
        return type(self) is type(other) and self.id == other.id

    def __hash__(self):
        return hash((type(self).__name__, self.id))


class GraphHead(Element):
    """The data record of one logical graph."""

    __slots__ = ()

    def __repr__(self):
        return "GraphHead(%s, :%s, %r)" % (
            self.id,
            self.label,
            self.properties.to_dict(),
        )


class GraphElement(Element):
    """A vertex or edge: additionally tracks graph membership l(v)/l(e)."""

    __slots__ = ("graph_ids",)

    def __init__(self, element_id, label="", properties=None, graph_ids=None):
        super().__init__(element_id, label, properties)
        self.graph_ids = set(graph_ids) if graph_ids else set()

    def add_graph_id(self, graph_id):
        self.graph_ids.add(graph_id)

    def in_graph(self, graph_id):
        return graph_id in self.graph_ids


class Vertex(GraphElement):
    __slots__ = ()

    def __repr__(self):
        return "Vertex(%s, :%s, %r)" % (self.id, self.label, self.properties.to_dict())


class Edge(GraphElement):
    """A directed edge from ``source_id`` to ``target_id``."""

    __slots__ = ("source_id", "target_id")

    def __init__(
        self,
        element_id,
        label="",
        source_id=None,
        target_id=None,
        properties=None,
        graph_ids=None,
    ):
        super().__init__(element_id, label, properties, graph_ids)
        if not isinstance(source_id, GradoopId) or not isinstance(
            target_id, GradoopId
        ):
            raise TypeError("edge endpoints must be GradoopIds")
        self.source_id = source_id
        self.target_id = target_id

    def serialized_size(self):
        return super().serialized_size() + 16

    def __repr__(self):
        return "Edge(%s, :%s, %s->%s, %r)" % (
            self.id,
            self.label,
            self.source_id,
            self.target_id,
            self.properties.to_dict(),
        )

"""Binary set operators on logical graphs (combine/overlap/exclude)."""


def combine(left, right):
    """Union of both graphs' vertices and edges (id-deduplicated)."""
    vertices = left.vertices.union(right.vertices).distinct(key=lambda v: v.id)
    edges = left.edges.union(right.edges).distinct(key=lambda e: e.id)
    return left._derive(vertices, edges)


def overlap(left, right):
    """Elements present in both graphs (by element id)."""
    vertices = left.vertices.join(
        right.vertices,
        lambda v: v.id,
        lambda v: v.id,
        join_fn=lambda a, b: [a],
        name="overlap-vertices",
    )
    edges = left.edges.join(
        right.edges,
        lambda e: e.id,
        lambda e: e.id,
        join_fn=lambda a, b: [a],
        name="overlap-edges",
    )
    return left._derive(vertices, edges)


def exclude(left, right):
    """Elements of ``left`` that do not appear in ``right``.

    Dangling edges (edges whose endpoint was excluded) are removed to keep
    the result a valid graph.
    """
    right_vertex_ids = set(v.id for v in right.vertices.collect())
    right_edge_ids = set(e.id for e in right.edges.collect())
    vertices = left.vertices.filter(
        lambda v, ids=right_vertex_ids: v.id not in ids, name="exclude-vertices"
    )
    edges = left.edges.filter(
        lambda e, ids=right_edge_ids: e.id not in ids, name="exclude-edges"
    )
    from ..logical_graph import consistent_edges

    return left._derive(
        vertices, consistent_edges(left.environment, vertices, edges)
    )

"""Structure-preserving element transformation."""


def transform_vertices(graph, fn):
    """Apply ``fn(vertex) -> vertex`` to every vertex.

    The function must return a vertex with the same id — transformation
    changes data, never structure.
    """
    def checked(vertex):
        result = fn(vertex)
        if result.id != vertex.id:
            raise ValueError("transformation must preserve element ids")
        return result

    return graph._derive(
        graph.vertices.map(checked, name="transform-vertices"), graph.edges
    )


def transform_edges(graph, fn):
    """Apply ``fn(edge) -> edge`` to every edge (id-preserving)."""
    def checked(edge):
        result = fn(edge)
        if result.id != edge.id:
            raise ValueError("transformation must preserve element ids")
        return result

    return graph._derive(
        graph.vertices, graph.edges.map(checked, name="transform-edges")
    )

"""Structural grouping: condense a graph into a summary graph.

Vertices are grouped by (label, selected property values); one super-vertex
per group carries a ``count`` property.  Edges are grouped by (label, source
group, target group) analogously — the classic Gradoop grouping operator
the paper lists among the framework's existing operators (§2.1).
"""

from ..elements import Edge, Vertex
from ..property_value import PropertyValue


def _group_key(element, keys):
    values = tuple(element.get_property(key).raw() for key in (keys or []))
    return (element.label,) + values


def group_by(graph, vertex_keys=None, edge_keys=None):
    """Summary graph grouped by label and the given property keys."""
    vertex_keys = list(vertex_keys or [])
    edge_keys = list(edge_keys or [])

    vertices = graph.collect_vertices()
    edges = graph.collect_edges()

    groups = {}
    member_to_group = {}
    for vertex in vertices:
        key = _group_key(vertex, vertex_keys)
        groups.setdefault(key, []).append(vertex)
        member_to_group[vertex.id] = key

    super_vertices = {}
    result_vertices = []
    for key, members in groups.items():
        vid = graph.id_factory.next_id()
        properties = {"count": PropertyValue(len(members))}
        for name, value in zip(vertex_keys, key[1:]):
            properties[name] = PropertyValue(value)
        super_vertex = Vertex(vid, label=key[0], properties=properties)
        super_vertices[key] = super_vertex
        result_vertices.append(super_vertex)

    edge_groups = {}
    for edge in edges:
        source_group = member_to_group.get(edge.source_id)
        target_group = member_to_group.get(edge.target_id)
        if source_group is None or target_group is None:
            continue
        key = (_group_key(edge, edge_keys), source_group, target_group)
        edge_groups.setdefault(key, []).append(edge)

    result_edges = []
    for (edge_key, source_group, target_group), members in edge_groups.items():
        properties = {"count": PropertyValue(len(members))}
        for name, value in zip(edge_keys, edge_key[1:]):
            properties[name] = PropertyValue(value)
        result_edges.append(
            Edge(
                graph.id_factory.next_id(),
                label=edge_key[0],
                source_id=super_vertices[source_group].id,
                target_id=super_vertices[target_group].id,
                properties=properties,
            )
        )

    return graph._derive(
        graph.environment.from_collection(result_vertices, name="grouped-vertices"),
        graph.environment.from_collection(result_edges, name="grouped-edges"),
        label="grouped",
    )

"""EPGM analytical operators on logical graphs and collections."""

"""Property-based aggregation: graph-wide values attached to the head."""

from ..property_value import PropertyValue


class AggregateFunction:
    """Base class for aggregates over a logical graph's elements."""

    #: which element dataset feeds the aggregate: "vertices" or "edges"
    scope = "vertices"

    def extract(self, element):
        """Map an element to a partial value (``None`` values are skipped)."""
        raise NotImplementedError

    def combine(self, values):
        """Reduce the extracted values to the final aggregate."""
        raise NotImplementedError


class Count(AggregateFunction):
    def __init__(self, scope="vertices"):
        self.scope = scope

    def extract(self, element):
        return 1

    def combine(self, values):
        return sum(values)


class SumProperty(AggregateFunction):
    def __init__(self, key, scope="vertices"):
        self.key = key
        self.scope = scope

    def extract(self, element):
        value = element.get_property(self.key)
        return None if value.is_null else value.raw()

    def combine(self, values):
        return sum(values)


class MinProperty(SumProperty):
    def combine(self, values):
        return min(values) if values else None


class MaxProperty(SumProperty):
    def combine(self, values):
        return max(values) if values else None


def aggregate(graph, property_key, aggregate_fn):
    """Attach ``aggregate_fn``'s result to the graph head as a property."""
    source = graph.vertices if aggregate_fn.scope == "vertices" else graph.edges
    extracted = [
        value
        for value in (aggregate_fn.extract(e) for e in source.collect())
        if value is not None
    ]
    result = aggregate_fn.combine(extracted)
    derived = graph._derive(
        graph.vertices,
        graph.edges,
        properties=graph.graph_head.properties.copy(),
    )
    derived.graph_head.properties.set(property_key, PropertyValue(result))
    return derived

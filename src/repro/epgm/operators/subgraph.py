"""Subgraph extraction operators."""

from ..logical_graph import consistent_edges


def subgraph(graph, vertex_predicate=None, edge_predicate=None):
    """Elements satisfying both predicates, with dangling edges removed.

    A ``None`` predicate keeps everything of that element kind.
    """
    vertices = graph.vertices
    if vertex_predicate is not None:
        vertices = vertices.filter(vertex_predicate, name="subgraph-vertices")
    edges = graph.edges
    if edge_predicate is not None:
        edges = edges.filter(edge_predicate, name="subgraph-edges")
    edges = consistent_edges(graph.environment, vertices, edges)
    return graph._derive(vertices, edges)


def vertex_induced_subgraph(graph, vertex_predicate):
    """All surviving vertices plus every edge between two of them."""
    if vertex_predicate is None:
        raise ValueError("vertex_induced_subgraph requires a predicate")
    return subgraph(graph, vertex_predicate, None)


def edge_induced_subgraph(graph, edge_predicate):
    """All surviving edges plus exactly their endpoint vertices."""
    if edge_predicate is None:
        raise ValueError("edge_induced_subgraph requires a predicate")
    edges = graph.edges.filter(edge_predicate, name="subgraph-edges")
    endpoint_ids = edges.flat_map(
        lambda e: [e.source_id, e.target_id], name="edge-endpoints"
    ).distinct()
    vertices = graph.vertices.join(
        endpoint_ids,
        lambda v: v.id,
        lambda vid: vid,
        join_fn=lambda v, vid: [v],
        name="induced-vertices",
    )
    return graph._derive(vertices, edges)

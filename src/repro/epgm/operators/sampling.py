"""Graph sampling operators (Gradoop's sampling family)."""

import random


def random_vertex_sample(graph, fraction, seed=0):
    """Keep each vertex with probability ``fraction`` (deterministic per
    seed), plus all edges between kept vertices — Gradoop's
    RandomVertexSampling.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1], got %r" % fraction)
    rng = random.Random("vertex-sample|%r" % seed)
    kept = {
        vertex.id
        for vertex in graph.collect_vertices()
        if rng.random() < fraction
    }
    return graph.vertex_induced_subgraph(lambda v, _kept=kept: v.id in _kept)


def random_edge_sample(graph, fraction, seed=0):
    """Keep each edge with probability ``fraction`` plus its endpoints —
    Gradoop's RandomEdgeSampling."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1], got %r" % fraction)
    rng = random.Random("edge-sample|%r" % seed)
    kept = {
        edge.id for edge in graph.collect_edges() if rng.random() < fraction
    }
    return graph.edge_induced_subgraph(lambda e, _kept=kept: e.id in _kept)

"""Typed, byte-serializable property values.

Mirrors Gradoop's ``PropertyValue``: a tagged union with a compact binary
representation.  The embedding data structure (paper §3.3) stores property
values as ``(byte-length, value)`` pairs, so every value must round-trip
through bytes; the byte length genuinely varies by type, which the tests
assert.

Comparison semantics follow Cypher: numbers compare across int/float,
strings compare with strings, everything else is *incomparable* and
ordering predicates on incomparable values evaluate to false (the engine
maps :class:`IncomparableError` to a failed predicate).
"""

import struct

from .identifiers import GradoopId


class IncomparableError(TypeError):
    """Raised when two property values have no defined ordering."""


_TYPE_NULL = 0x00
_TYPE_BOOL = 0x01
_TYPE_INT = 0x02
_TYPE_FLOAT = 0x03
_TYPE_STRING = 0x04
_TYPE_LIST = 0x05
_TYPE_ID = 0x06

_INT_STRUCT = struct.Struct(">q")
_FLOAT_STRUCT = struct.Struct(">d")
_LEN_STRUCT = struct.Struct(">I")

_TYPE_NAMES = {
    _TYPE_NULL: "null",
    _TYPE_BOOL: "boolean",
    _TYPE_INT: "integer",
    _TYPE_FLOAT: "float",
    _TYPE_STRING: "string",
    _TYPE_LIST: "list",
    _TYPE_ID: "gradoop_id",
}


class PropertyValue:
    """An immutable, typed property value."""

    __slots__ = ("_type", "_value", "_bytes")

    def __init__(self, value):
        """Wrap a raw Python value; use ``PropertyValue(None)`` for NULL."""
        self._bytes = None
        if isinstance(value, PropertyValue):
            self._type = value._type
            self._value = value._value
        elif value is None:
            self._type, self._value = _TYPE_NULL, None
        elif isinstance(value, bool):
            self._type, self._value = _TYPE_BOOL, value
        elif isinstance(value, int):
            if not -(1 << 63) <= value < (1 << 63):
                raise ValueError("integer property out of int64 range: %d" % value)
            self._type, self._value = _TYPE_INT, value
        elif isinstance(value, float):
            self._type, self._value = _TYPE_FLOAT, value
        elif isinstance(value, str):
            self._type, self._value = _TYPE_STRING, value
        elif isinstance(value, GradoopId):
            self._type, self._value = _TYPE_ID, value
        elif isinstance(value, (list, tuple)):
            self._type = _TYPE_LIST
            self._value = tuple(PropertyValue(item) for item in value)
        else:
            raise TypeError(
                "unsupported property type: %r" % type(value).__name__
            )

    # Introspection ----------------------------------------------------------

    @property
    def type_name(self):
        return _TYPE_NAMES[self._type]

    @property
    def is_null(self):
        return self._type == _TYPE_NULL

    @property
    def is_number(self):
        return self._type in (_TYPE_INT, _TYPE_FLOAT)

    @property
    def is_string(self):
        return self._type == _TYPE_STRING

    @property
    def is_boolean(self):
        return self._type == _TYPE_BOOL

    @property
    def is_list(self):
        return self._type == _TYPE_LIST

    def raw(self):
        """The underlying Python value (lists come back as plain lists)."""
        if self._type == _TYPE_LIST:
            return [item.raw() for item in self._value]
        return self._value

    # Serialization ------------------------------------------------------------

    def to_bytes(self):
        """Serialize as one type byte plus a type-specific payload.

        The encoding is memoized: values are immutable and every scan of
        an element re-serializes the same payload, so the bytes are
        computed once per value, not once per embedding row.
        """
        cached = self._bytes
        if cached is None:
            cached = self._bytes = self._encode()
        return cached

    def _encode(self):
        t = self._type
        if t == _TYPE_NULL:
            return bytes([t])
        if t == _TYPE_BOOL:
            return bytes([t, 1 if self._value else 0])
        if t == _TYPE_INT:
            return bytes([t]) + _INT_STRUCT.pack(self._value)
        if t == _TYPE_FLOAT:
            return bytes([t]) + _FLOAT_STRUCT.pack(self._value)
        if t == _TYPE_STRING:
            encoded = self._value.encode("utf-8")
            return bytes([t]) + _LEN_STRUCT.pack(len(encoded)) + encoded
        if t == _TYPE_ID:
            return bytes([t]) + self._value.to_bytes()
        if t == _TYPE_LIST:
            payload = b"".join(item.to_bytes() for item in self._value)
            return bytes([t]) + _LEN_STRUCT.pack(len(self._value)) + payload
        raise AssertionError("unreachable type %d" % t)

    @classmethod
    def from_bytes(cls, data, offset=0):
        """Deserialize; returns ``(value, bytes_consumed)``."""
        t = data[offset]
        if t == _TYPE_NULL:
            return cls(None), 1
        if t == _TYPE_BOOL:
            return cls(bool(data[offset + 1])), 2
        if t == _TYPE_INT:
            return cls(_INT_STRUCT.unpack_from(data, offset + 1)[0]), 9
        if t == _TYPE_FLOAT:
            return cls(_FLOAT_STRUCT.unpack_from(data, offset + 1)[0]), 9
        if t == _TYPE_STRING:
            (length,) = _LEN_STRUCT.unpack_from(data, offset + 1)
            start = offset + 5
            text = bytes(data[start : start + length]).decode("utf-8")
            return cls(text), 5 + length
        if t == _TYPE_ID:
            return cls(GradoopId.from_bytes(data, offset + 1)), 9
        if t == _TYPE_LIST:
            (count,) = _LEN_STRUCT.unpack_from(data, offset + 1)
            cursor = offset + 5
            items = []
            for _ in range(count):
                item, consumed = cls.from_bytes(data, cursor)
                items.append(item)
                cursor += consumed
            return cls([item.raw() for item in items]), cursor - offset
        raise ValueError("unknown property type byte: 0x%02x" % t)

    def serialized_size(self):
        """Byte length of :meth:`to_bytes` (used for shuffle accounting)."""
        return len(self.to_bytes())

    # Comparison ---------------------------------------------------------------

    def _comparable_with(self, other):
        if self.is_number and other.is_number:
            return True
        return self._type == other._type and not self.is_null

    def compare(self, other):
        """Three-way comparison; raises :class:`IncomparableError` when the
        Cypher ordering is undefined (e.g. string vs. int, anything vs. null).
        """
        if not isinstance(other, PropertyValue):
            other = PropertyValue(other)
        if not self._comparable_with(other):
            raise IncomparableError(
                "cannot compare %s with %s" % (self.type_name, other.type_name)
            )
        left, right = self._value, other._value
        if self._type == _TYPE_LIST:
            left = [item.raw() for item in self._value]
            right = [item.raw() for item in other._value]
        if left < right:
            return -1
        if left > right:
            return 1
        return 0

    def __eq__(self, other):
        if not isinstance(other, PropertyValue):
            if isinstance(other, (type(None), bool, int, float, str, GradoopId, list, tuple)):
                other = PropertyValue(other)
            else:
                return NotImplemented
        if self.is_number and other.is_number:
            return self._value == other._value
        return self._type == other._type and self._value == other._value

    def __lt__(self, other):
        return self.compare(other) < 0

    def __le__(self, other):
        return self.compare(other) <= 0

    def __gt__(self, other):
        return self.compare(other) > 0

    def __ge__(self, other):
        return self.compare(other) >= 0

    def __hash__(self):
        if self.is_number:
            return hash(("num", float(self._value)))
        return hash((self._type, self._value))

    def __repr__(self):
        return "PropertyValue(%r)" % (self.raw(),)


#: Reusable NULL singleton, mirroring Gradoop's ``PropertyValue.NULL_VALUE``.
NULL_VALUE = PropertyValue(None)

"""Render a logical graph back to GDL text.

The inverse of :func:`repro.epgm.io.gdl.parse_gdl`: useful for dumping
small graphs into test fixtures and documentation.  Round-trip property:
``parse_gdl(env, to_gdl(g))`` is isomorphic to ``g`` (ids are
regenerated; labels, properties and structure are preserved).
"""

from repro.cypher.ast import _render_literal


def _render_properties(properties):
    if not len(properties):
        return ""
    entries = ", ".join(
        "%s: %s" % (key, _render_literal(value.raw()))
        for key, value in properties.items()
    )
    return " {%s}" % entries


def to_gdl(graph, name="g"):
    """GDL text for a :class:`~repro.epgm.LogicalGraph`."""
    head = graph.graph_head
    header = name
    if head.label:
        header += ":" + head.label
    header += _render_properties(head.properties)

    lines = ["%s [" % header]
    variables = {}
    for index, vertex in enumerate(
        sorted(graph.collect_vertices(), key=lambda v: v.id)
    ):
        variable = "v%d" % index
        variables[vertex.id] = variable
        label = ":" + vertex.label if vertex.label else ""
        lines.append(
            "    (%s%s%s)" % (variable, label, _render_properties(vertex.properties))
        )
    for edge in sorted(graph.collect_edges(), key=lambda e: e.id):
        label = ":" + edge.label if edge.label else ""
        lines.append(
            "    (%s)-[%s%s]->(%s)"
            % (
                variables[edge.source_id],
                label,
                _render_properties(edge.properties),
                variables[edge.target_id],
            )
        )
    lines.append("]")
    return "\n".join(lines)

"""Graphviz DOT export for logical graphs.

Handy for inspecting small graphs and match results:

.. code-block:: python

    print(to_dot(graph, vertex_label_key="name"))
"""


def _escape(text):
    return str(text).replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph, name="G", vertex_label_key=None, include_properties=False):
    """Render a logical graph as a DOT digraph string.

    Args:
        graph: The :class:`~repro.epgm.LogicalGraph`.
        name: Graph name in the DOT output.
        vertex_label_key: Property whose value becomes the node caption
            (falls back to the type label).
        include_properties: Append all properties to element captions.
    """
    lines = ["digraph %s {" % name, "  node [shape=box];"]
    for vertex in graph.collect_vertices():
        caption = vertex.label
        if vertex_label_key is not None:
            value = vertex.get_property(vertex_label_key)
            if not value.is_null:
                caption = "%s:%s" % (value.raw(), vertex.label)
        if include_properties and len(vertex.properties):
            caption += "\\n" + _escape(vertex.properties.to_dict())
        lines.append(
            '  v%d [label="%s"];' % (vertex.id.value, _escape(caption))
        )
    for edge in graph.collect_edges():
        caption = edge.label
        if include_properties and len(edge.properties):
            caption += "\\n" + _escape(edge.properties.to_dict())
        lines.append(
            '  v%d -> v%d [label="%s"];'
            % (edge.source_id.value, edge.target_id.value, _escape(caption))
        )
    lines.append("}")
    return "\n".join(lines)

"""A GDL-style graph definition reader.

Gradoop defines example and test graphs with GDL (Graph Definition
Language), whose pattern syntax matches Cypher's MATCH patterns.  This
module materializes such ASCII-art graphs:

.. code-block:: python

    graph = parse_gdl(env, '''
        community:Community {area: "Leipzig"} [
            (alice:Person {name: "Alice"})-[:knows]->(bob:Person)
            (bob)-[e:knows {since: 2014}]->(alice)
        ]
    ''')

Rules: a repeated variable denotes the same element; anonymous elements
are created fresh per occurrence; the graph head declaration before ``[``
is optional; paths may be separated by commas or whitespace.  Undirected
and variable-length edges are pattern features, not data, and are
rejected.
"""

from repro.cypher.ast import Direction
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import tokenize
from repro.cypher.parser import _Parser

from ..elements import Edge, GraphHead, Vertex
from ..identifiers import GradoopIdFactory
from ..logical_graph import LogicalGraph


class GDLError(ValueError):
    """The GDL text is not a valid graph definition."""


def parse_gdl(environment, text, id_factory=None):
    """Materialize a GDL graph definition as a :class:`LogicalGraph`."""
    factory = id_factory if id_factory is not None else GradoopIdFactory(start=1)
    parser = _Parser(tokenize(text))

    label, properties = _parse_graph_header(parser)
    head = GraphHead(factory.next_id(), label=label, properties=properties)

    paths = _parse_paths(parser)

    vertices_by_variable = {}
    vertices = []
    edges = []

    def materialize_vertex(node):
        if node.variable and node.variable in vertices_by_variable:
            vertex = vertices_by_variable[node.variable]
            if node.labels or node.properties:
                raise GDLError(
                    "vertex %r redefined with labels/properties" % node.variable
                )
            return vertex
        if len(node.labels) > 1:
            raise GDLError("data vertices have exactly one label")
        vertex = Vertex(
            factory.next_id(),
            label=node.labels[0] if node.labels else "",
            properties=_literal_properties(node.properties),
        )
        vertices.append(vertex)
        if node.variable:
            vertices_by_variable[node.variable] = vertex
        return vertex

    for path in paths:
        materialized = [materialize_vertex(node) for node in path.nodes]
        for index, rel in enumerate(path.relationships):
            if rel.is_variable_length:
                raise GDLError("variable-length edges are queries, not data")
            if rel.direction is Direction.UNDIRECTED:
                raise GDLError("data edges must be directed")
            if len(rel.types) > 1:
                raise GDLError("data edges have exactly one type")
            left, right = materialized[index], materialized[index + 1]
            if rel.direction is Direction.INCOMING:
                source, target = right, left
            else:
                source, target = left, right
            edges.append(
                Edge(
                    factory.next_id(),
                    label=rel.types[0] if rel.types else "",
                    source_id=source.id,
                    target_id=target.id,
                    properties=_literal_properties(rel.properties),
                )
            )

    return LogicalGraph.from_collections(
        environment, vertices, edges, graph_head=head, id_factory=factory
    )


def _parse_graph_header(parser):
    """Optional ``name:Label {props} [`` prefix; returns (label, props)."""
    label = ""
    properties = None
    if parser._check("ident") or parser._check("symbol", ":"):
        parser._accept("ident")  # the graph variable name is decorative
        if parser._accept("symbol", ":"):
            label = parser._expect("ident").text
        if parser._check("symbol", "{"):
            properties = _literal_properties(parser._parse_property_map())
        parser._expect("symbol", "[")
        return label, properties
    if parser._accept("symbol", "["):
        return label, properties
    return label, properties  # bare pattern text without brackets


def _parse_paths(parser):
    paths = []
    while True:
        if parser._accept("symbol", "]"):
            break
        if parser._check("eof"):
            break
        try:
            paths.append(parser._parse_path_pattern())
        except CypherSyntaxError as exc:
            raise GDLError("invalid GDL pattern: %s" % exc) from exc
        parser._accept("symbol", ",")  # separators are optional
    if not parser._check("eof"):
        token = parser._current
        raise GDLError("unexpected %r after graph definition" % token.text)
    return paths


def _literal_properties(entries):
    if not entries:
        return None
    return {key: literal.value for key, literal in entries}

"""Gradoop-style CSV data source and sink.

The paper stores LDBC data "in HDFS using a Gradoop-specific CSV format"
(§4).  We reproduce that format on the local filesystem: a directory with

* ``metadata.csv`` — per label: element kind, label, ordered property keys
  and types;
* ``graphs.csv`` — one graph head per line;
* ``vertices.csv`` / ``edges.csv`` — elements with graph membership,
  (endpoints,) label and property values in metadata order.

Field separator is ``;``, property separator is ``|``; both are escaped
with a backslash inside values.
"""

import os

from ..elements import Edge, GraphHead, Vertex
from ..graph_collection import GraphCollection
from ..identifiers import GradoopId
from ..logical_graph import LogicalGraph
from ..property_value import PropertyValue

_KIND_GRAPH = "g"
_KIND_VERTEX = "v"
_KIND_EDGE = "e"

def _escape(text):
    return (
        text.replace("\\", "\\\\")
        .replace(";", "\\;")
        .replace("|", "\\|")
        .replace("\n", "\\n")
    )


def _split(line, separator):
    """Split on an unescaped separator, keeping escape sequences intact.

    Values pass through two split levels (``;`` fields, then ``|``
    properties), so unescaping must happen exactly once, at the end, via
    :func:`_unescape`.
    """
    fields = []
    current = []
    escaped = False
    for char in line:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == separator:
            fields.append("".join(current))
            current = []
        else:
            current.append(char)
    fields.append("".join(current))
    return fields


def _unescape(text):
    """Resolve backslash escapes produced by :func:`_escape`."""
    out = []
    escaped = False
    for char in text:
        if escaped:
            out.append("\n" if char == "n" else char)
            escaped = False
        elif char == "\\":
            escaped = True
        else:
            out.append(char)
    return "".join(out)


def _format_value(value):
    raw = value.raw()
    if raw is None:
        return ""
    if isinstance(raw, bool):
        return "true" if raw else "false"
    return _escape(str(raw))


def _parse_value(text, type_name):
    if text == "":
        return None
    text = _unescape(text)
    if type_name == "string":
        return text
    if type_name == "int":
        return int(text)
    if type_name == "float":
        return float(text)
    if type_name == "boolean":
        return text == "true"
    raise ValueError("unknown property type %r in metadata" % type_name)


def _type_name_of(value):
    raw = value.raw()
    if isinstance(raw, bool):
        return "boolean"
    if isinstance(raw, int):
        return "int"
    if isinstance(raw, float):
        return "float"
    return "string"


class _Metadata:
    """Per-(kind, label) ordered property schema."""

    def __init__(self):
        self.schemas = {}

    def observe(self, kind, element):
        schema = self.schemas.setdefault((kind, element.label), {})
        for key, value in element.properties.items():
            if not value.is_null and key not in schema:
                schema[key] = _type_name_of(value)

    def keys_for(self, kind, label):
        return list(self.schemas.get((kind, label), {}).keys())

    def write(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            for (kind, label), schema in sorted(self.schemas.items()):
                columns = ",".join(
                    "%s:%s" % (key, type_name) for key, type_name in schema.items()
                )
                handle.write("%s;%s;%s\n" % (kind, _escape(label), columns))

    @classmethod
    def read(cls, path):
        metadata = cls()
        if not os.path.exists(path):
            return metadata
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                kind, label, columns = _split(line, ";")
                label = _unescape(label)
                schema = {}
                if columns:
                    for column in columns.split(","):
                        key, type_name = column.split(":")
                        schema[key] = type_name
                metadata.schemas[(kind, label)] = schema
        return metadata


#: Statistics file written next to the element files (see
#: :meth:`CSVDataSink.write_logical_graph`); Gradoop ships comparable
#: per-dataset statistics for its planner.
STATISTICS_FILE = "statistics.json"


class CSVDataSink:
    """Write a logical graph or collection to a directory."""

    def __init__(self, path):
        self.path = path

    def write_logical_graph(self, graph, with_statistics=True):
        """Write the graph; by default also pre-compute and persist the
        planner statistics so readers skip the counting pass (§3.2)."""
        self.write_graph_collection(GraphCollection.from_graph(graph))
        if with_statistics:
            from repro.engine.statistics import GraphStatistics

            GraphStatistics.from_graph(graph).write_json(
                os.path.join(self.path, STATISTICS_FILE)
            )

    def write_graph_collection(self, collection):
        os.makedirs(self.path, exist_ok=True)
        heads = collection.collect_graph_heads()
        vertices = collection.vertices.collect()
        edges = collection.edges.collect()

        metadata = _Metadata()
        for head in heads:
            metadata.observe(_KIND_GRAPH, head)
        for vertex in vertices:
            metadata.observe(_KIND_VERTEX, vertex)
        for edge in edges:
            metadata.observe(_KIND_EDGE, edge)
        metadata.write(os.path.join(self.path, "metadata.csv"))

        with open(
            os.path.join(self.path, "graphs.csv"), "w", encoding="utf-8"
        ) as handle:
            for head in heads:
                handle.write(
                    "%d;%s;%s\n"
                    % (
                        head.id.value,
                        _escape(head.label),
                        self._format_properties(metadata, _KIND_GRAPH, head),
                    )
                )
        with open(
            os.path.join(self.path, "vertices.csv"), "w", encoding="utf-8"
        ) as handle:
            for vertex in vertices:
                handle.write(
                    "%d;%s;%s;%s\n"
                    % (
                        vertex.id.value,
                        self._format_graph_ids(vertex),
                        _escape(vertex.label),
                        self._format_properties(metadata, _KIND_VERTEX, vertex),
                    )
                )
        with open(
            os.path.join(self.path, "edges.csv"), "w", encoding="utf-8"
        ) as handle:
            for edge in edges:
                handle.write(
                    "%d;%s;%d;%d;%s;%s\n"
                    % (
                        edge.id.value,
                        self._format_graph_ids(edge),
                        edge.source_id.value,
                        edge.target_id.value,
                        _escape(edge.label),
                        self._format_properties(metadata, _KIND_EDGE, edge),
                    )
                )

    @staticmethod
    def _format_graph_ids(element):
        return "[%s]" % ",".join(str(g.value) for g in sorted(element.graph_ids))

    @staticmethod
    def _format_properties(metadata, kind, element):
        keys = metadata.keys_for(kind, element.label)
        return "|".join(_format_value(element.get_property(key)) for key in keys)


class CSVDataSource:
    """Read a logical graph or collection from a directory."""

    def __init__(self, path):
        self.path = path

    def get_graph_collection(self, environment):
        metadata = _Metadata.read(os.path.join(self.path, "metadata.csv"))
        heads = list(self._read_graphs(metadata))
        vertices = list(self._read_vertices(metadata))
        edges = list(self._read_edges(metadata))
        return GraphCollection.from_collections(environment, heads, vertices, edges)

    def get_logical_graph(self, environment):
        """Read a single logical graph (the collection must have one head)."""
        metadata = _Metadata.read(os.path.join(self.path, "metadata.csv"))
        heads = list(self._read_graphs(metadata))
        if len(heads) != 1:
            raise ValueError(
                "expected exactly one graph head, found %d" % len(heads)
            )
        vertices = list(self._read_vertices(metadata))
        edges = list(self._read_edges(metadata))
        return LogicalGraph(
            environment,
            heads[0],
            environment.from_collection(vertices, name="vertices"),
            environment.from_collection(edges, name="edges"),
        )

    def get_statistics(self):
        """Persisted planner statistics, or ``None`` if absent."""
        path = os.path.join(self.path, STATISTICS_FILE)
        if not os.path.exists(path):
            return None
        from repro.engine.statistics import GraphStatistics

        return GraphStatistics.read_json(path)

    # Readers ------------------------------------------------------------------

    def _lines(self, filename):
        path = os.path.join(self.path, filename)
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if line:
                    yield line

    def _read_graphs(self, metadata):
        for line in self._lines("graphs.csv"):
            graph_id, label, values = _split(line, ";")
            yield GraphHead(
                GradoopId(int(graph_id)),
                label=_unescape(label),
                properties=self._parse_properties(metadata, _KIND_GRAPH, label, values),
            )

    def _read_vertices(self, metadata):
        for line in self._lines("vertices.csv"):
            vertex_id, graph_ids, label, values = _split(line, ";")
            yield Vertex(
                GradoopId(int(vertex_id)),
                label=_unescape(label),
                properties=self._parse_properties(
                    metadata, _KIND_VERTEX, label, values
                ),
                graph_ids=self._parse_graph_ids(graph_ids),
            )

    def _read_edges(self, metadata):
        for line in self._lines("edges.csv"):
            edge_id, graph_ids, source, target, label, values = _split(line, ";")
            yield Edge(
                GradoopId(int(edge_id)),
                label=_unescape(label),
                source_id=GradoopId(int(source)),
                target_id=GradoopId(int(target)),
                properties=self._parse_properties(metadata, _KIND_EDGE, label, values),
                graph_ids=self._parse_graph_ids(graph_ids),
            )

    @staticmethod
    def _parse_graph_ids(field):
        inner = field.strip("[]")
        if not inner:
            return set()
        return {GradoopId(int(part)) for part in inner.split(",")}

    @staticmethod
    def _parse_properties(metadata, kind, label, values_field):
        keys = metadata.keys_for(kind, label)
        if not keys:
            return None
        values = _split(values_field, "|")
        properties = {}
        for key, text in zip(keys, values):
            parsed = _parse_value(text, metadata.schemas[(kind, label)][key])
            if parsed is not None:
                properties[key] = PropertyValue(parsed)
        return properties

"""Graph data sources and sinks."""

from .csv import CSVDataSink, CSVDataSource
from .dot import to_dot
from .gdl import GDLError, parse_gdl
from .gdl_writer import to_gdl

__all__ = [
    "CSVDataSink",
    "CSVDataSource",
    "GDLError",
    "parse_gdl",
    "to_dot",
    "to_gdl",
]

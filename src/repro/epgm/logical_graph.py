"""The :class:`LogicalGraph` abstraction (paper §2.4).

A logical graph is a graph head plus vertex and edge datasets.  All EPGM
operators — including the Cypher pattern-matching operator this project
reproduces — consume and produce logical graphs or graph collections.
"""

from .elements import GraphHead
from .identifiers import GradoopIdFactory


class LogicalGraph:
    """A single property graph distributed over the simulated cluster."""

    def __init__(self, environment, graph_head, vertices, edges, id_factory=None):
        """Wrap existing datasets; prefer :meth:`from_collections`.

        Args:
            environment: The owning dataflow environment.
            graph_head: :class:`GraphHead` describing this graph.
            vertices: DataSet of :class:`Vertex`.
            edges: DataSet of :class:`Edge`.
            id_factory: Source of fresh ids for derived graphs.
        """
        self.environment = environment
        self.graph_head = graph_head
        self._vertices = vertices
        self._edges = edges
        self.id_factory = (
            id_factory if id_factory is not None else GradoopIdFactory.derived()
        )

    @classmethod
    def from_collections(
        cls,
        environment,
        vertices,
        edges,
        graph_head=None,
        id_factory=None,
        partitioning=None,
    ):
        """Build a logical graph from in-memory element lists.

        Every element is stamped with the graph head's id so Definition 2.1's
        containment mapping ``l`` holds.  ``partitioning`` selects the data
        placement (:class:`~repro.epgm.partitioning.GraphPartitioning`);
        the default is Flink-style balanced round-robin blocks.
        """
        from .partitioning import GraphPartitioning, edge_dataset, vertex_dataset

        factory = (
            id_factory if id_factory is not None else GradoopIdFactory.derived()
        )
        if graph_head is None:
            graph_head = GraphHead(factory.next_id(), label="")
        for element in list(vertices) + list(edges):
            element.add_graph_id(graph_head.id)
        if partitioning is None:
            partitioning = GraphPartitioning.ROUND_ROBIN
        return cls(
            environment,
            graph_head,
            vertex_dataset(environment, vertices, partitioning),
            edge_dataset(environment, edges, partitioning),
            id_factory=factory,
        )

    # Accessors ----------------------------------------------------------------

    @property
    def vertices(self):
        """DataSet of this graph's vertices."""
        return self._vertices

    @property
    def edges(self):
        """DataSet of this graph's edges."""
        return self._edges

    def vertices_by_label(self, label):
        """Vertices with the given label.

        On a plain logical graph this is a filter over the full vertex
        dataset; :class:`~repro.epgm.indexed.IndexedLogicalGraph` overrides
        it to read only the per-label dataset (paper §3.4).
        """
        return self._vertices.filter(
            lambda v, _label=label: v.label == _label,
            name="vertices[:%s]" % label,
        )

    def edges_by_label(self, label):
        """Edges with the given label (see :meth:`vertices_by_label`)."""
        return self._edges.filter(
            lambda e, _label=label: e.label == _label,
            name="edges[:%s]" % label,
        )

    def vertex_count(self):
        return self._vertices.count()

    def edge_count(self):
        return self._edges.count()

    def collect_vertices(self):
        return self._vertices.collect()

    def collect_edges(self):
        return self._edges.collect()

    # Cypher -------------------------------------------------------------------

    def cypher(
        self,
        query,
        vertex_strategy=None,
        edge_strategy=None,
        statistics=None,
        attach_bindings=True,
        parameters=None,
    ):
        """Evaluate a Cypher pattern-matching query (Definition 2.4).

        Args:
            query: Cypher query string (MATCH/WHERE/RETURN subset).
            vertex_strategy: :class:`~repro.engine.morphism.MatchStrategy`
                for vertices (default HOMOMORPHISM, like Neo4j).
            edge_strategy: Match strategy for edges (default ISOMORPHISM).
            statistics: Pre-computed
                :class:`~repro.engine.statistics.GraphStatistics`; computed
                on the fly when omitted.
            attach_bindings: Store variable bindings as properties on the
                result graph heads (paper §2.3).

        Returns:
            A :class:`~repro.epgm.graph_collection.GraphCollection` with one
            logical graph per embedding.
        """
        from repro.engine import CypherRunner

        runner = CypherRunner(
            self,
            vertex_strategy=vertex_strategy,
            edge_strategy=edge_strategy,
            statistics=statistics,
        )
        return runner.execute(
            query, attach_bindings=attach_bindings, parameters=parameters
        )

    # EPGM operators -------------------------------------------------------------

    def subgraph(self, vertex_predicate=None, edge_predicate=None):
        """Extract the subgraph of elements satisfying both predicates."""
        from .operators.subgraph import subgraph

        return subgraph(self, vertex_predicate, edge_predicate)

    def vertex_induced_subgraph(self, vertex_predicate):
        """Subgraph induced by the vertices satisfying the predicate."""
        from .operators.subgraph import vertex_induced_subgraph

        return vertex_induced_subgraph(self, vertex_predicate)

    def edge_induced_subgraph(self, edge_predicate):
        """Subgraph induced by the edges satisfying the predicate."""
        from .operators.subgraph import edge_induced_subgraph

        return edge_induced_subgraph(self, edge_predicate)

    def transform_vertices(self, fn):
        """Apply ``fn(vertex) -> vertex`` to every vertex."""
        from .operators.transformation import transform_vertices

        return transform_vertices(self, fn)

    def transform_edges(self, fn):
        """Apply ``fn(edge) -> edge`` to every edge."""
        from .operators.transformation import transform_edges

        return transform_edges(self, fn)

    def aggregate(self, property_key, aggregate_fn):
        """Attach an aggregate over the graph to the graph head."""
        from .operators.aggregation import aggregate

        return aggregate(self, property_key, aggregate_fn)

    def combine(self, other):
        """Union of two logical graphs (vertices and edges, deduplicated)."""
        from .operators.set_operators import combine

        return combine(self, other)

    def overlap(self, other):
        """Intersection of two logical graphs."""
        from .operators.set_operators import overlap

        return overlap(self, other)

    def exclude(self, other):
        """Elements of this graph that are not in ``other``."""
        from .operators.set_operators import exclude

        return exclude(self, other)

    def group_by(self, vertex_keys=None, edge_keys=None):
        """Structural grouping (summary graph) by label and property keys."""
        from .operators.grouping import group_by

        return group_by(self, vertex_keys, edge_keys)

    def sample_vertices(self, fraction, seed=0):
        """Random vertex sample with induced edges (deterministic per seed)."""
        from .operators.sampling import random_vertex_sample

        return random_vertex_sample(self, fraction, seed)

    def sample_edges(self, fraction, seed=0):
        """Random edge sample with endpoint vertices (deterministic per seed)."""
        from .operators.sampling import random_edge_sample

        return random_edge_sample(self, fraction, seed)

    # Helpers --------------------------------------------------------------------

    def _derive(self, vertices, edges, label=None, properties=None):
        """A new logical graph over derived datasets with a fresh head.

        Elements are stamped with the new head's id on materialization —
        Definition 2.1's containment mapping must include every graph an
        operator produces.
        """
        head = GraphHead(
            self.id_factory.next_id(),
            label=label if label is not None else self.graph_head.label,
            properties=properties,
        )

        def stamp(element, _head_id=head.id):
            element.add_graph_id(_head_id)
            return element

        return LogicalGraph(
            self.environment,
            head,
            vertices.map(stamp, name="stamp-membership"),
            edges.map(stamp, name="stamp-membership"),
            id_factory=self.id_factory,
        )

    def __repr__(self):
        return "LogicalGraph(head=%s)" % (self.graph_head,)


def consistent_edges(environment, vertices, edges):
    """Keep only edges whose endpoints are both present in ``vertices``.

    Implemented as two dataflow joins against the surviving vertex ids so
    the filtering shows up in shuffle metrics like any other operation.
    """
    vertex_ids = vertices.map(lambda v: v.id, name="vertex-ids")
    with_source = edges.join(
        vertex_ids,
        lambda e: e.source_id,
        lambda vid: vid,
        join_fn=lambda e, vid: [e],
        name="edges-with-source",
    )
    return with_source.join(
        vertex_ids,
        lambda e: e.target_id,
        lambda vid: vid,
        join_fn=lambda e, vid: [e],
        name="edges-with-target",
    )

"""Breadth-first distances via frontier expansion (bulk iteration)."""


def bfs_distances(graph, source_id, directed=True, max_iterations=100):
    """Hop distances from ``source_id`` to every reachable vertex.

    Args:
        graph: The logical graph.
        source_id: Start vertex :class:`~repro.epgm.GradoopId`.
        directed: Follow edge direction (True) or treat edges as
            undirected.
        max_iterations: Hard bound on the BFS depth.

    Returns:
        dict: ``{GradoopId: int}`` with ``source_id`` mapped to 0.
    """
    environment = graph.environment
    if directed:
        adjacency = graph.edges.map(
            lambda e: (e.source_id, e.target_id), name="bfs-adjacency"
        )
    else:
        adjacency = graph.edges.flat_map(
            lambda e: [(e.source_id, e.target_id), (e.target_id, e.source_id)],
            name="bfs-adjacency",
        )

    distances = {source_id: 0}
    frontier = [source_id]
    for depth in range(1, max_iterations + 1):
        frontier_ds = environment.from_collection(frontier, name="bfs-frontier")
        neighbours = frontier_ds.join(
            adjacency,
            lambda v: v,
            lambda a: a[0],
            join_fn=lambda v, a: [a[1]],
            name="bfs-expand",
        ).distinct()
        discovered = [
            vid for vid in neighbours.collect() if vid not in distances
        ]
        if not discovered:
            break
        for vid in discovered:
            distances[vid] = depth
        frontier = discovered
    return distances

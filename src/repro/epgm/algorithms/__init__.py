"""Graph algorithms on logical graphs.

Gradoop combines pattern matching with the iterative graph algorithms of
Flink's Gelly library (paper §1: analysts integrate "declarative pattern
matching within a graph analytical program").  This package provides the
classic algorithms on the same dataflow substrate: connected components,
breadth-first distances, degree statistics and a Cypher-powered triangle
count.
"""

from .bfs import bfs_distances
from .degrees import degree_distribution, degrees
from .triangles import triangle_count
from .wcc import weakly_connected_components

__all__ = [
    "bfs_distances",
    "degree_distribution",
    "degrees",
    "triangle_count",
    "weakly_connected_components",
]

"""Triangle counting via the Cypher engine.

Pattern matching *is* an analytical operator (paper §1): the undirected
triangle count is the paper's Query 5 pattern under full isomorphism,
de-duplicated over the six orderings of each triangle.
"""

from repro.engine import CypherRunner, MatchStrategy


def triangle_count(graph, edge_label=None):
    """Number of undirected triangles in the graph.

    Args:
        graph: The logical graph.
        edge_label: Restrict to edges of one type (e.g. ``"knows"``);
            ``None`` uses all edges.
    """
    label = ":%s" % edge_label if edge_label else ""
    query = (
        "MATCH (a)-[e1%s]-(b), (b)-[e2%s]-(c), (a)-[e3%s]-(c) RETURN *"
        % (label, label, label)
    )
    runner = CypherRunner(
        graph,
        vertex_strategy=MatchStrategy.ISOMORPHISM,
        edge_strategy=MatchStrategy.ISOMORPHISM,
    )
    embeddings, meta = runner.execute_embeddings(query)
    # each undirected triangle matches once per vertex permutation
    unique = set()
    columns = [meta.entry_column(v) for v in ("a", "b", "c")]
    for embedding in embeddings:
        unique.add(frozenset(embedding.raw_id_at(column) for column in columns))
    return len(unique)

"""Weakly connected components as a dataflow delta iteration.

Each vertex starts with its own id as component label; every superstep,
the labels of last round's *changed* vertices flow along edges (both
directions) and each receiver keeps the minimum — only the moving
frontier is processed, exactly Flink's delta-iteration formulation of
connected components.
"""

from repro.epgm.identifiers import GradoopId


def weakly_connected_components(graph, max_iterations=100):
    """Map each vertex id to its component id (the minimal member id).

    Returns:
        dict: ``{GradoopId: int}`` — component labels; two vertices share a
        label iff they are connected ignoring edge direction.
    """
    environment = graph.environment
    adjacency = graph.edges.flat_map(
        lambda e: [
            (e.source_id.value, e.target_id.value),
            (e.target_id.value, e.source_id.value),
        ],
        name="wcc-adjacency",
    )
    initial = graph.vertices.map(
        lambda v: (v.id.value, v.id.value), name="wcc-init"
    )

    def step(solution, workset, iteration):
        candidates = workset.join(
            adjacency,
            lambda s: s[0],
            lambda a: a[0],
            join_fn=lambda s, a: [(a[1], s[1])],
            name="wcc-propagate",
        )
        # merge candidates with the current assignment, keep the minimum
        return (
            solution.union(candidates)
            .group_by(lambda pair: pair[0])
            .reduce_group(
                lambda key, pairs: [
                    (key, min(component for _, component in pairs))
                ],
                name="wcc-minimum",
            )
        )

    final = environment.delta_iterate(
        initial, lambda record: record[0], step, max_iterations
    )
    return {GradoopId(vid): component for vid, component in final.collect()}


def component_sizes(graph, max_iterations=100):
    """Histogram of component sizes."""
    components = weakly_connected_components(graph, max_iterations)
    sizes = {}
    for component in components.values():
        sizes[component] = sizes.get(component, 0) + 1
    return sorted(sizes.values(), reverse=True)

"""Degree statistics as dataflow jobs."""


def degrees(graph, mode="out"):
    """Per-vertex degree: ``'out'``, ``'in'`` or ``'both'``.

    Vertices without edges are included with degree 0.

    Returns:
        dict: ``{GradoopId: int}``.
    """
    if mode == "out":
        endpoints = graph.edges.map(lambda e: e.source_id, name="degree-endpoints")
    elif mode == "in":
        endpoints = graph.edges.map(lambda e: e.target_id, name="degree-endpoints")
    elif mode == "both":
        endpoints = graph.edges.flat_map(
            lambda e: [e.source_id, e.target_id], name="degree-endpoints"
        )
    else:
        raise ValueError("mode must be 'out', 'in' or 'both'")
    counted = dict(
        endpoints.group_by(lambda vid: vid).count_per_group().collect()
    )
    return {
        vertex.id: counted.get(vertex.id, 0) for vertex in graph.collect_vertices()
    }


def degree_distribution(graph, mode="out"):
    """Histogram ``{degree: vertex count}``."""
    histogram = {}
    for degree in degrees(graph, mode).values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram

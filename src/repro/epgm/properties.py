"""Key → :class:`PropertyValue` maps attached to EPGM elements."""

from .property_value import NULL_VALUE, PropertyValue


class Properties:
    """An insertion-ordered property map.

    Values are normalized to :class:`PropertyValue` on insertion; lookups of
    absent keys return the NULL value (the ``ε`` of Definition 2.1), never
    raise.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries=None):
        self._entries = {}
        if entries:
            items = entries.items() if isinstance(entries, dict) else entries
            for key, value in items:
                self.set(key, value)

    @classmethod
    def create(cls, **kwargs):
        """Convenience constructor: ``Properties.create(name="Alice")``."""
        return cls(kwargs)

    def set(self, key, value):
        if not isinstance(key, str) or not key:
            raise ValueError("property key must be a non-empty string")
        self._entries[key] = (
            value if isinstance(value, PropertyValue) else PropertyValue(value)
        )

    def get(self, key):
        """The value for ``key``, or NULL if absent (never raises)."""
        return self._entries.get(key, NULL_VALUE)

    def has(self, key):
        return key in self._entries

    def remove(self, key):
        """Remove ``key`` if present; returns the removed value or NULL."""
        return self._entries.pop(key, NULL_VALUE)

    def keys(self):
        return list(self._entries.keys())

    def items(self):
        return list(self._entries.items())

    def retain(self, keys):
        """A copy containing only ``keys`` (projection, paper §3.1)."""
        kept = Properties()
        for key in keys:
            if key in self._entries:
                kept._entries[key] = self._entries[key]
        return kept

    def copy(self):
        duplicate = Properties()
        duplicate._entries = dict(self._entries)
        return duplicate

    def to_dict(self):
        """Plain-Python view, e.g. for display or CSV export."""
        return {key: value.raw() for key, value in self._entries.items()}

    def serialized_size(self):
        return sum(
            len(key.encode("utf-8")) + value.serialized_size()
            for key, value in self._entries.items()
        )

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def __iter__(self):
        return iter(self._entries)

    def __eq__(self, other):
        return isinstance(other, Properties) and self._entries == other._entries

    def __repr__(self):
        return "Properties(%r)" % self.to_dict()

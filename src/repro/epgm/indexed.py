"""Label-indexed logical graphs (paper §3.4).

Gradoop's ``IndexedLogicalGraph`` partitions vertices and edges by type
label and manages a separate dataset per label.  When a query vertex or
edge carries a label predicate, the planner loads only that label's
dataset instead of scanning (and filtering) the union of all elements.
"""

from .logical_graph import LogicalGraph


class IndexedLogicalGraph(LogicalGraph):
    """A logical graph with one dataset per vertex/edge label."""

    def __init__(self, environment, graph_head, vertices, edges, id_factory=None):
        super().__init__(environment, graph_head, vertices, edges, id_factory)
        self._vertex_index = {}
        self._edge_index = {}

    @classmethod
    def from_logical_graph(cls, graph):
        """Index an existing logical graph by materializing its elements."""
        indexed = cls(
            graph.environment,
            graph.graph_head,
            graph.vertices,
            graph.edges,
            id_factory=graph.id_factory,
        )
        indexed._build_index(graph.collect_vertices(), graph.collect_edges())
        return indexed

    @classmethod
    def from_collections(
        cls, environment, vertices, edges, graph_head=None, id_factory=None
    ):
        base = LogicalGraph.from_collections(
            environment, vertices, edges, graph_head, id_factory
        )
        indexed = cls(
            environment,
            base.graph_head,
            base.vertices,
            base.edges,
            id_factory=base.id_factory,
        )
        indexed._build_index(vertices, edges)
        return indexed

    def _build_index(self, vertices, edges):
        by_vertex_label = {}
        for vertex in vertices:
            by_vertex_label.setdefault(vertex.label, []).append(vertex)
        by_edge_label = {}
        for edge in edges:
            by_edge_label.setdefault(edge.label, []).append(edge)
        self._vertex_index = {
            label: self.environment.from_collection(
                elements, name="vertices[:%s]" % label
            )
            for label, elements in by_vertex_label.items()
        }
        self._edge_index = {
            label: self.environment.from_collection(
                elements, name="edges[:%s]" % label
            )
            for label, elements in by_edge_label.items()
        }

    @property
    def vertex_labels(self):
        return sorted(self._vertex_index.keys())

    @property
    def edge_labels(self):
        return sorted(self._edge_index.keys())

    def vertices_by_label(self, label):
        """Only the requested label's dataset — no scan over other labels."""
        if label in self._vertex_index:
            return self._vertex_index[label]
        return self.environment.from_collection([], name="vertices[:%s]" % label)

    def edges_by_label(self, label):
        if label in self._edge_index:
            return self._edge_index[label]
        return self.environment.from_collection([], name="edges[:%s]" % label)

"""A thread-safe bounded LRU cache with hit/miss/eviction statistics.

Shared infrastructure for the engine's plan cache and the serving layer's
result cache (:mod:`repro.server.cache`).  Keys are ordinary hashable
tuples; the caller is responsible for including every input that affects
the cached value — for query plans that means the graph identity, the
statistics version, the query text, parameter values, morphism strategies,
planner and instrumentation mode.
"""

from collections import OrderedDict

from repro.locks import named_lock


class CacheStats:
    """Monotonic counters describing one cache's behaviour.

    The counters carry their own (leaf) lock rather than borrowing the
    owning cache's: ``snapshot()`` and the derived properties are read
    by observers (metrics endpoints, benches) that never hold the cache
    lock, so unlocked counters would tear — a ``hits`` from before a
    concurrent lookup summed with a ``misses`` from after it.
    """

    __slots__ = ("_lock", "hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self._lock = named_lock("cache.stats")
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock

    # Recording (called by the owning cache) ----------------------------------

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def record_eviction(self):
        with self._lock:
            self.evictions += 1

    def record_invalidations(self, count):
        with self._lock:
            self.invalidations += count

    # Reading ------------------------------------------------------------------

    @property
    def lookups(self):
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self):
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def snapshot(self):
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(
                    self.hits / lookups if lookups else 0.0, 4
                ),
            }

    def __repr__(self):
        with self._lock:
            return "CacheStats(hits=%d, misses=%d, evictions=%d)" % (
                self.hits, self.misses, self.evictions
            )


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations take an internal lock, so one instance may back
    concurrent service queries.  ``maxsize <= 0`` disables storage
    entirely (every ``get`` is a miss) — callers can keep one code path
    whether a cache is configured or not.

    ``name`` names the lock in the lock-order witness graph, so the plan
    and result caches show up as distinct roles ("cache.plan",
    "cache.result") instead of one anonymous mutex.
    """

    def __init__(self, maxsize=128, name="cache.lru"):
        self.maxsize = maxsize  # unsynchronized: immutable after construction
        self.stats = CacheStats()  # unsynchronized: assigned once; self-locking
        self._entries = OrderedDict()  # guarded-by: _lock
        self._lock = named_lock(name)

    def get(self, key, default=None):
        """The cached value (refreshing its recency), or ``default``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.record_miss()
                return default
            self._entries.move_to_end(key)
            self.stats.record_hit()
            return value

    def put(self, key, value):
        """Insert ``key``; evicts the least recently used entry when full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.record_eviction()

    def invalidate(self, predicate=None):
        """Drop entries (all of them, or those whose key matches).

        Returns the number of entries removed.  With stats-version-bearing
        keys this is rarely needed — bumping the version makes old entries
        unreachable and LRU ages them out — but explicit invalidation keeps
        memory tight after e.g. re-registering a large graph.
        """
        with self._lock:
            if predicate is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if predicate(key)]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self.stats.record_invalidations(removed)
            return removed

    def clear(self):
        self.invalidate()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def __repr__(self):
        return "LRUCache(%d/%d, %r)" % (len(self), self.maxsize, self.stats)
